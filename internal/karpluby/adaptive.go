package karpluby

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"

	"qrel/internal/prop"
)

// This file implements the optimal adaptive stopping rule of Dagum,
// Karp, Luby and Ross ("An Optimal Algorithm for Monte Carlo
// Estimation", SIAM J. Comput. 2000) on top of the Karp–Luby zero-one
// estimator. Where the static Lemma 5.11 sample size must assume the
// worst-case coverage p = 1/m, the adaptive algorithm stops as soon as
// the accumulated evidence suffices, using ~ p·t(static) samples when
// the true coverage p is large. Experiment E10 quantifies the saving.
//
// The rule here is the first (stopping-rule) phase of the DKLR
// algorithm specialized to {0,1} variables: sample until the number of
// successes reaches Υ = 1 + 4(e−2)·ln(2/δ)·(1+ε)/ε², then estimate
// p ≈ Υ/t. For 0-1 variables this single phase already yields an
// (ε, δ) relative-error estimate.

// adaptiveThreshold returns Υ(ε, δ).
func adaptiveThreshold(eps, delta float64) (float64, error) {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("karpluby: need 0 < eps < 1 and 0 < delta < 1, got eps=%v delta=%v", eps, delta)
	}
	lam := math.E - 2
	return 1 + 4*lam*math.Log(2/delta)*(1+eps)/(eps*eps), nil
}

// CountDNFAdaptive estimates #DNF with the Karp–Luby estimator under
// the DKLR stopping rule: it samples until the hit count reaches the
// threshold Υ(ε, δ) (or the static Lemma 5.11 budget, whichever comes
// first, so pathological inputs cannot run away) and returns
// U · Υ/t. Compared to CountDNF, the sample count adapts to the true
// coverage instead of assuming the worst case 1/m.
func CountDNFAdaptive(d prop.DNF, eps, delta float64, rng *rand.Rand) (CountResult, error) {
	norm := normalizedTerms(d)
	if len(norm) == 0 {
		return CountResult{Estimate: new(big.Rat)}, nil
	}
	upsilon, err := adaptiveThreshold(eps, delta)
	if err != nil {
		return CountResult{}, err
	}
	staticT, err := SampleSize(eps, delta, len(norm))
	if err != nil {
		return CountResult{}, err
	}
	cum, total := termWeights(norm, d.NumVars)
	if total.Sign() == 0 {
		return CountResult{Estimate: new(big.Rat)}, nil
	}
	hits, t := 0, 0
	a := make([]bool, d.NumVars)
	for float64(hits) < upsilon && t < staticT {
		i := pickCumulative(rng, cum, total)
		sampleTermAssignment(rng, norm[i], a, nil)
		if firstSatisfied(norm, a) == i {
			hits++
		}
		t++
	}
	// Estimate p = hits/t (if the static cap stopped us early the static
	// guarantee holds; otherwise the DKLR bound does).
	est := new(big.Rat).SetInt(total)
	est.Mul(est, big.NewRat(int64(hits), int64(t)))
	return CountResult{Estimate: est, Samples: t, Hits: hits}, nil
}

// termWeights returns the cumulative satisfying-assignment counts of
// the (normalized) terms and their grand total.
func termWeights(norm []prop.Term, numVars int) (cum []*big.Int, total *big.Int) {
	cum = make([]*big.Int, len(norm))
	total = new(big.Int)
	for i, tm := range norm {
		total.Add(total, prop.TermSatCount(tm, numVars))
		cum[i] = new(big.Int).Set(total)
	}
	return cum, total
}
