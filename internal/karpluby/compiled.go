package karpluby

import (
	"context"
	"errors"
	"math/big"
	"math/bits"
	"math/rand"

	"qrel/internal/mc"
	"qrel/internal/prop"
	"qrel/internal/vm"
)

// Compiled Karp–Luby estimators: the same coverage iteration as
// karpluby.go with the per-iteration assignment materialization and
// first-satisfied term scan replaced by bit-parallel evaluation over
// batches of up to 64 iterations (vm.FirstSatisfiedHits). The RNG draw
// sequence is preserved per iteration — term pick, then the full
// variable assignment, in the scalar order — so a compiled run is
// byte-identical (estimate, snapshots, lane aggregates) to the
// interpreted run for the same seed and worker count.

// ErrUnbatchable reports a DNF whose total term weight does not fit
// the uint64 fast path of the batched term pick; callers fall back to
// the interpreted estimator.
var ErrUnbatchable = errors.New("karpluby: term-weight total exceeds 63 bits; use the interpreted estimator")

// klBatchSize mirrors the mc package's batch clamping: at most 64
// iterations, never crossing the remaining quota, the next
// context-poll boundary, or the next periodic-checkpoint boundary.
func klBatchSize(drawn, quota, every, lastSave int) int {
	m := quota - drawn
	if m > 64 {
		m = 64
	}
	if r := ctxPollStride - drawn%ctxPollStride; m > r {
		m = r
	}
	if every > 0 {
		if r := every - (drawn - lastSave); m > r {
			m = r
		}
	}
	return m
}

// klBatchFull returns the live-iterations mask of an m-iteration batch.
func klBatchFull(m int) uint64 { return ^uint64(0) >> uint(64-m) }

// runKLLanesBatch is runKLLanes with a batched step: setup builds a
// per-lane step drawing exactly m iterations' worth of RNG values in
// the scalar per-iteration order. Context polls and periodic snapshots
// happen at exactly the same Drawn values as the scalar loop.
func runKLLanesBatch(ctx context.Context, lanes []*mc.Lane, workers, total int, ck *mc.Ckpt, setup func(ln *mc.Lane) func(m int) error) error {
	mc.AssignQuotas(lanes, total)
	if err := mc.RestoreLanes(klMethod, lanes, ck); err != nil {
		return err
	}
	lc := mc.NewLaneCkpt(klMethod, lanes, ck)
	every := lc.PerLaneEvery(len(lanes))
	err := mc.RunLanes(ctx, lanes, workers, func(ctx context.Context, ln *mc.Lane) error {
		step := setup(ln)
		lastSave := ln.Drawn
		for ln.Drawn < ln.Quota {
			if ln.Drawn%ctxPollStride == 0 && ctx.Err() != nil {
				return ctx.Err()
			}
			if every > 0 && ln.Drawn-lastSave >= every {
				lastSave = ln.Drawn
				if err := lc.Publish(ln, true); err != nil {
					return err
				}
			}
			m := klBatchSize(ln.Drawn, ln.Quota, every, lastSave)
			if err := step(m); err != nil {
				return err
			}
			ln.Drawn += m
		}
		return lc.Publish(ln, false)
	})
	if err != nil {
		return err
	}
	return lc.FinalSave()
}

// pick64 holds the precomputed uint64 fast path of the weighted term
// pick: the cumulative weights and the byte-rejection parameters of
// randBigBelowScratch, replicated draw-for-draw.
type pick64 struct {
	cum   []uint64
	total uint64
	nb    int
	mask  byte
	// lut radix-indexes the cumulative sums by the top eight bits of a
	// drawn value: lut[j] is the first term whose cumulative weight
	// exceeds the bucket start j<<shift. The search then only scans
	// forward within one bucket, replacing a binary search whose
	// comparisons are coin-flips the branch predictor cannot learn.
	lut   [256]int32
	shift uint
}

func newPick64(cum []*big.Int, total *big.Int) (*pick64, error) {
	nbits := total.BitLen()
	if nbits > 63 {
		return nil, ErrUnbatchable
	}
	p := &pick64{
		cum:   make([]uint64, len(cum)),
		total: total.Uint64(),
		nb:    (nbits + 7) / 8,
		mask:  byte(0xff >> uint(((nbits+7)/8)*8-nbits)),
	}
	for i, c := range cum {
		p.cum[i] = c.Uint64()
	}
	if nbits > 8 {
		p.shift = uint(nbits - 8)
	}
	i := int32(0)
	last := int32(len(p.cum) - 1)
	for j := range p.lut {
		start := uint64(j) << p.shift
		for i < last && p.cum[i] <= start {
			i++
		}
		p.lut[j] = i
	}
	return p, nil
}

// draw replicates pickCumulativeScratch over the Drawer: the same
// big-endian byte draws (most significant byte masked), the same
// rejection loop, the same binary search over the cumulative sums.
func (p *pick64) draw(d mc.Drawer) int {
	var v uint64
	for {
		v = uint64(d.Byte()) & uint64(p.mask)
		for k := 1; k < p.nb; k++ {
			v = v<<8 | uint64(d.Byte())
		}
		if v < p.total {
			break
		}
	}
	return p.search(v)
}

// drawHot is draw over a hoisted generator. It takes and returns the
// HotRNG by value so the caller's copy never has its address taken —
// that keeps the state words eligible for registers across the rest of
// the batch loop.
func (p *pick64) drawHot(h mc.HotRNG) (int, mc.HotRNG) {
	var v uint64
	for {
		v = uint64(h.Byte()) & uint64(p.mask)
		for k := 1; k < p.nb; k++ {
			v = v<<8 | uint64(h.Byte())
		}
		if v < p.total {
			break
		}
	}
	return p.search(v), h
}

// search returns the first term whose cumulative weight exceeds v —
// the same index the interpreted path's binary search produces, found
// by a radix-bucket jump plus a short forward scan. The scan cannot run
// off the end: v < total = cum[len-1], so the last entry always stops it.
func (p *pick64) search(v uint64) int {
	i := int(p.lut[(v>>p.shift)&0xff])
	for p.cum[i] <= v {
		i++
	}
	return i
}

// CountDNFCompiled is CountDNF on the bit-parallel batched path.
func CountDNFCompiled(d prop.DNF, eps, delta float64, rng *rand.Rand) (CountResult, error) {
	return countDNFLanesCompiled(context.Background(), d, eps, delta, []*mc.Lane{{Rng: rng}}, 1, nil)
}

// CountDNFCkCompiled is CountDNFCk on the bit-parallel batched path;
// its snapshots interchange with the interpreted estimator's.
func CountDNFCkCompiled(d prop.DNF, eps, delta float64, src *mc.Source, ck *mc.Ckpt) (CountResult, error) {
	return countDNFLanesCompiled(context.Background(), d, eps, delta, []*mc.Lane{{Src: src, Rng: rand.New(src)}}, 1, ck)
}

// CountDNFParCompiled is CountDNFPar on the bit-parallel batched path.
func CountDNFParCompiled(ctx context.Context, d prop.DNF, eps, delta float64, seed int64, par mc.Par, ck *mc.Ckpt) (CountResult, error) {
	lanes, workers := mc.LanesFor(seed, par)
	return countDNFLanesCompiled(ctx, d, eps, delta, lanes, workers, ck)
}

func countDNFLanesCompiled(ctx context.Context, d prop.DNF, eps, delta float64, lanes []*mc.Lane, workers int, ck *mc.Ckpt) (CountResult, error) {
	norm := normalizedTerms(d)
	if len(norm) == 0 {
		return CountResult{Estimate: new(big.Rat)}, nil
	}
	t, err := SampleSize(eps, delta, len(norm))
	if err != nil {
		return CountResult{}, err
	}
	cum, total := termWeights(norm, d.NumVars)
	if total.Sign() == 0 {
		return CountResult{Estimate: new(big.Rat)}, nil
	}
	pk, err := newPick64(cum, total)
	if err != nil {
		return CountResult{}, err
	}
	// Flattened literal-forcing tables for the hot loop: term i forces
	// literals litVar[litStart[i]:litStart[i+1]], with litNeg all-ones
	// for a negated literal. One flat walk replaces the per-sample
	// slice-of-slices traversal and its data-dependent branch on Neg.
	litStart := make([]int32, len(norm)+1)
	var litVar []int32
	var litNeg []uint64
	for i, tm := range norm {
		litStart[i] = int32(len(litVar))
		for _, l := range tm {
			litVar = append(litVar, int32(l.Var))
			neg := uint64(0)
			if l.Neg {
				neg = ^uint64(0)
			}
			litNeg = append(litNeg, neg)
		}
	}
	litStart[len(norm)] = int32(len(litVar))
	err = runKLLanesBatch(ctx, lanes, workers, t, ck, func(ln *mc.Lane) func(m int) error {
		dr := mc.NewDrawer(ln)
		cols := make([]uint64, d.NumVars)
		picked := make([]uint64, len(norm))
		if _, fast := dr.Hot(); fast {
			// Hoisted-generator batch loop: the draw stream is identical to
			// the Drawer loop below, but every Intn2/Byte inlines the
			// xoshiro step over locals instead of calling into the Source.
			// State is written back before the step returns, so checkpoint
			// snapshots at batch boundaries see the advanced generator.
			return func(m int) error {
				for i := range cols {
					cols[i] = 0
				}
				for i := range picked {
					picked[i] = 0
				}
				hot, _ := dr.Hot()
				bit := uint64(1)
				nv := len(cols)
				for s := 0; s < m; s++ {
					var i int
					i, hot = pk.drawHot(hot)
					// Branchless assignment fill: draw==0 sets the bit. A
					// conditional here is a coin-flip branch the predictor can
					// never learn; the mispredict penalty dominated the draw
					// itself. Unrolled two wide to thin the loop-control
					// overhead around the serial generator chain.
					v := 0
					for ; v+1 < nv; v += 2 {
						cols[v] |= bit & (uint64(hot.Intn2()) - 1)
						cols[v+1] |= bit & (uint64(hot.Intn2()) - 1)
					}
					if v < nv {
						cols[v] |= bit & (uint64(hot.Intn2()) - 1)
					}
					for k := litStart[i]; k < litStart[i+1]; k++ {
						cols[litVar[k]] = (cols[litVar[k]] | bit) &^ (bit & litNeg[k])
					}
					picked[i] |= bit
					bit <<= 1
				}
				dr.PutHot(hot)
				ln.Hits += bits.OnesCount64(vm.FirstSatisfiedHits(norm, cols, picked, klBatchFull(m)))
				return nil
			}
		}
		return func(m int) error {
			for i := range cols {
				cols[i] = 0
			}
			for i := range picked {
				picked[i] = 0
			}
			for s := 0; s < m; s++ {
				bit := uint64(1) << uint(s)
				i := pk.draw(dr)
				for v := 0; v < d.NumVars; v++ {
					if dr.Intn2() == 0 {
						cols[v] |= bit
					}
				}
				for _, l := range norm[i] {
					if l.Neg {
						cols[l.Var] &^= bit
					} else {
						cols[l.Var] |= bit
					}
				}
				picked[i] |= bit
			}
			ln.Hits += bits.OnesCount64(vm.FirstSatisfiedHits(norm, cols, picked, klBatchFull(m)))
			return nil
		}
	})
	if err != nil {
		return CountResult{}, err
	}
	hits := 0
	for _, ln := range lanes {
		hits += ln.Hits
	}
	est := new(big.Rat).SetInt(total)
	est.Mul(est, big.NewRat(int64(hits), int64(t)))
	return CountResult{Estimate: est, Samples: t, Hits: hits}, nil
}

// ProbDNFCompiled is ProbDNF on the bit-parallel batched path.
func ProbDNFCompiled(d prop.DNF, p prop.ProbAssignment, eps, delta float64, rng *rand.Rand) (CountResult, error) {
	return probDNFLanesCompiled(context.Background(), d, p, eps, delta, []*mc.Lane{{Rng: rng}}, 1, nil)
}

// ProbDNFCkCompiled is ProbDNFCk on the bit-parallel batched path; its
// snapshots interchange with the interpreted estimator's.
func ProbDNFCkCompiled(d prop.DNF, p prop.ProbAssignment, eps, delta float64, src *mc.Source, ck *mc.Ckpt) (CountResult, error) {
	return probDNFLanesCompiled(context.Background(), d, p, eps, delta, []*mc.Lane{{Src: src, Rng: rand.New(src)}}, 1, ck)
}

// ProbDNFParCompiled is ProbDNFPar on the bit-parallel batched path.
func ProbDNFParCompiled(ctx context.Context, d prop.DNF, p prop.ProbAssignment, eps, delta float64, seed int64, par mc.Par, ck *mc.Ckpt) (CountResult, error) {
	lanes, workers := mc.LanesFor(seed, par)
	return probDNFLanesCompiled(ctx, d, p, eps, delta, lanes, workers, ck)
}

func probDNFLanesCompiled(ctx context.Context, d prop.DNF, p prop.ProbAssignment, eps, delta float64, lanes []*mc.Lane, workers int, ck *mc.Ckpt) (CountResult, error) {
	if err := p.Validate(d.NumVars); err != nil {
		return CountResult{}, err
	}
	norm := normalizedTerms(d)
	if len(norm) == 0 {
		return CountResult{Estimate: new(big.Rat)}, nil
	}
	t, err := SampleSize(eps, delta, len(norm))
	if err != nil {
		return CountResult{}, err
	}
	pf := make([]float64, d.NumVars)
	for i := range pf {
		pf[i], _ = p[i].Float64()
	}
	weightsExact := new(big.Rat)
	cum := make([]float64, len(norm))
	sum := 0.0
	for i, tm := range norm {
		w := p.TermProb(tm)
		weightsExact.Add(weightsExact, w)
		wf, _ := w.Float64()
		sum += wf
		cum[i] = sum
	}
	if weightsExact.Sign() == 0 {
		return CountResult{Estimate: new(big.Rat)}, nil
	}
	err = runKLLanesBatch(ctx, lanes, workers, t, ck, func(ln *mc.Lane) func(m int) error {
		dr := mc.NewDrawer(ln)
		cols := make([]uint64, d.NumVars)
		picked := make([]uint64, len(norm))
		if _, fast := dr.Hot(); fast {
			// Same hoisted-generator structure as the counting estimator;
			// see countDNFLanesCompiled.
			return func(m int) error {
				for i := range cols {
					cols[i] = 0
				}
				for i := range picked {
					picked[i] = 0
				}
				hot, _ := dr.Hot()
				for s := 0; s < m; s++ {
					bit := uint64(1) << uint(s)
					r := hot.Float64() * sum
					i := 0
					for i < len(cum)-1 && cum[i] <= r {
						i++
					}
					for v := range cols {
						if hot.Float64() < pf[v] {
							cols[v] |= bit
						}
					}
					for _, l := range norm[i] {
						if l.Neg {
							cols[l.Var] &^= bit
						} else {
							cols[l.Var] |= bit
						}
					}
					picked[i] |= bit
				}
				dr.PutHot(hot)
				ln.Hits += bits.OnesCount64(vm.FirstSatisfiedHits(norm, cols, picked, klBatchFull(m)))
				return nil
			}
		}
		return func(m int) error {
			for i := range cols {
				cols[i] = 0
			}
			for i := range picked {
				picked[i] = 0
			}
			for s := 0; s < m; s++ {
				bit := uint64(1) << uint(s)
				r := dr.Float64() * sum
				i := 0
				for i < len(cum)-1 && cum[i] <= r {
					i++
				}
				for v := 0; v < d.NumVars; v++ {
					if dr.Float64() < pf[v] {
						cols[v] |= bit
					}
				}
				for _, l := range norm[i] {
					if l.Neg {
						cols[l.Var] &^= bit
					} else {
						cols[l.Var] |= bit
					}
				}
				picked[i] |= bit
			}
			ln.Hits += bits.OnesCount64(vm.FirstSatisfiedHits(norm, cols, picked, klBatchFull(m)))
			return nil
		}
	})
	if err != nil {
		return CountResult{}, err
	}
	hits := 0
	for _, ln := range lanes {
		hits += ln.Hits
	}
	est := new(big.Rat).Set(weightsExact)
	est.Mul(est, big.NewRat(int64(hits), int64(t)))
	return CountResult{Estimate: est, Samples: t, Hits: hits}, nil
}
