package karpluby

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"qrel/internal/prop"
)

func randDNF(rng *rand.Rand, numVars, numTerms, width int) prop.DNF {
	d := prop.DNF{NumVars: numVars}
	for i := 0; i < numTerms; i++ {
		w := 1 + rng.Intn(width)
		t := make(prop.Term, 0, w)
		for j := 0; j < w; j++ {
			t = append(t, prop.Lit{Var: rng.Intn(numVars), Neg: rng.Intn(2) == 0})
		}
		d.Terms = append(d.Terms, t)
	}
	return d
}

func TestSampleSize(t *testing.T) {
	n, err := SampleSize(0.1, 0.05, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Ceil(4.5 * 10 * math.Log(2/0.05) / 0.01))
	if n != want {
		t.Errorf("SampleSize = %d, want %d", n, want)
	}
	for _, bad := range [][2]float64{{0, 0.1}, {-1, 0.1}, {0.1, 0}, {0.1, 1}} {
		if _, err := SampleSize(bad[0], bad[1], 10); err == nil {
			t.Errorf("SampleSize(%v) accepted", bad)
		}
	}
	if _, err := SampleSize(0.1, 0.1, 0); err == nil {
		t.Error("zero terms accepted")
	}
	if _, err := SampleSize(1e-9, 1e-9, 1000); err == nil {
		t.Error("absurd sample size accepted")
	}
}

func TestLemma511Bound(t *testing.T) {
	// Bound decreases in t and is ≤ 2.
	b1 := Lemma511Bound(0.1, 100, 0.3)
	b2 := Lemma511Bound(0.1, 1000, 0.3)
	if b2 >= b1 {
		t.Error("bound not decreasing in t")
	}
	if Lemma511Bound(0.1, 10, 0) != 1 || Lemma511Bound(0.1, 10, 1) != 1 {
		t.Error("degenerate p should clamp to 1")
	}
	// For the paper's t(ε,δ) with ξ = p, the bound is below δ.
	xi, eps, delta := 0.25, 0.1, 0.05
	tt := int(math.Ceil(9 / (2 * xi * eps * eps) * math.Log(1/delta)))
	if got := Lemma511Bound(eps, tt, xi); got >= 2*delta {
		t.Errorf("bound %v at paper sample size, want < 2δ = %v", got, 2*delta)
	}
}

func TestRandBigBelow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := big.NewInt(10)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := randBigBelow(rng, n)
		if v.Sign() < 0 || v.Cmp(n) >= 0 {
			t.Fatalf("sample %v outside [0,10)", v)
		}
		counts[v.Int64()]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("value %d drawn %d times of 10000; expected ≈1000", i, c)
		}
	}
	if randBigBelow(rng, new(big.Int)).Sign() != 0 {
		t.Error("randBigBelow(0) should be 0")
	}
}

func TestCountDNFAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const eps, delta = 0.1, 0.02
	failures := 0
	const instances = 30
	for iter := 0; iter < instances; iter++ {
		nv := 6 + rng.Intn(6)
		d := randDNF(rng, nv, 2+rng.Intn(8), 3)
		exact, err := d.CountBruteForce(12)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CountDNF(d, eps, delta, rng)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Sign() == 0 {
			if got.Estimate.Sign() != 0 {
				t.Errorf("iter %d: estimate %v for unsatisfiable formula", iter, got.Estimate)
			}
			continue
		}
		relErr := new(big.Rat).Sub(got.Estimate, new(big.Rat).SetInt(exact))
		relErr.Quo(relErr, new(big.Rat).SetInt(exact))
		if f, _ := relErr.Float64(); math.Abs(f) > eps {
			failures++
		}
	}
	// δ = 2% per instance; over 30 instances expect ~0–1 failures. Allow 3.
	if failures > 3 {
		t.Errorf("%d of %d instances exceeded relative error %v", failures, instances, eps)
	}
}

func TestCountDNFEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Empty DNF: count 0.
	res, err := CountDNF(prop.DNF{NumVars: 5}, 0.1, 0.1, rng)
	if err != nil || res.Estimate.Sign() != 0 {
		t.Errorf("empty DNF: %v, %v", res.Estimate, err)
	}
	// All terms contradictory.
	d := prop.MustDNF(3, prop.Term{prop.Pos(0), prop.Negd(0)})
	res, err = CountDNF(d, 0.1, 0.1, rng)
	if err != nil || res.Estimate.Sign() != 0 {
		t.Errorf("contradictory DNF: %v, %v", res.Estimate, err)
	}
	// Tautology: exactly 2^n, zero variance (every sample hits term 0).
	d = prop.MustDNF(4, prop.Term{})
	res, err = CountDNF(d, 0.5, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.Cmp(big.NewRat(16, 1)) != 0 {
		t.Errorf("tautology estimate %v, want 16", res.Estimate)
	}
}

func TestProbDNFAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const eps, delta = 0.1, 0.02
	failures := 0
	const instances = 30
	for iter := 0; iter < instances; iter++ {
		nv := 5 + rng.Intn(5)
		d := randDNF(rng, nv, 2+rng.Intn(6), 3)
		p := make(prop.ProbAssignment, nv)
		for i := range p {
			p[i] = big.NewRat(int64(1+rng.Intn(9)), 10)
		}
		exact, err := d.ProbBruteForce(p, 12)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ProbDNF(d, p, eps, delta, rng)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Sign() == 0 {
			continue
		}
		relErr := new(big.Rat).Sub(got.Estimate, exact)
		relErr.Quo(relErr, exact)
		if f, _ := relErr.Float64(); math.Abs(f) > eps {
			failures++
		}
	}
	if failures > 3 {
		t.Errorf("%d of %d instances exceeded relative error %v", failures, instances, eps)
	}
}

func TestProbDNFValidation(t *testing.T) {
	d := prop.MustDNF(2, prop.Term{prop.Pos(0)})
	if _, err := ProbDNF(d, prop.ProbAssignment{big.NewRat(1, 2)}, 0.1, 0.1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("short probability assignment accepted")
	}
}

func TestCountResultFloat(t *testing.T) {
	r := CountResult{Estimate: big.NewRat(3, 2)}
	if r.Float() != 1.5 {
		t.Errorf("Float = %v", r.Float())
	}
}

func TestCountDNFAdaptiveAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const eps, delta = 0.1, 0.02
	failures := 0
	const instances = 30
	for iter := 0; iter < instances; iter++ {
		nv := 6 + rng.Intn(6)
		d := randDNF(rng, nv, 2+rng.Intn(8), 3)
		exact, err := d.CountBruteForce(12)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CountDNFAdaptive(d, eps, delta, rng)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Sign() == 0 {
			if got.Estimate.Sign() != 0 {
				t.Errorf("iter %d: nonzero estimate for unsat formula", iter)
			}
			continue
		}
		relErr := new(big.Rat).Sub(got.Estimate, new(big.Rat).SetInt(exact))
		relErr.Quo(relErr, new(big.Rat).SetInt(exact))
		if f, _ := relErr.Float64(); math.Abs(f) > eps {
			failures++
		}
	}
	if failures > 3 {
		t.Errorf("%d of %d adaptive estimates exceeded eps", failures, instances)
	}
}

func TestCountDNFAdaptiveSavesWhenCoverageHigh(t *testing.T) {
	// A near-disjoint DNF has coverage p ≈ 1: the adaptive rule should
	// stop far earlier than the static worst-case budget.
	rng := rand.New(rand.NewSource(8))
	nv, m := 24, 12
	d := prop.DNF{NumVars: nv}
	for i := 0; i < m; i++ {
		d.Terms = append(d.Terms, prop.Term{prop.Pos(2 * i), prop.Pos(2*i + 1)})
	}
	static, err := CountDNF(d, 0.1, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := CountDNFAdaptive(d, 0.1, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Samples*2 > static.Samples {
		t.Errorf("adaptive used %d samples, static %d; expected a large saving", adaptive.Samples, static.Samples)
	}
	// And the estimates agree with the exact count within 10%.
	exact, err := d.CountBruteForce(24)
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]CountResult{"static": static, "adaptive": adaptive} {
		diff := new(big.Rat).Sub(res.Estimate, new(big.Rat).SetInt(exact))
		diff.Quo(diff, new(big.Rat).SetInt(exact))
		if f, _ := diff.Float64(); math.Abs(f) > 0.1 {
			t.Errorf("%s estimate off by %v", name, f)
		}
	}
}

func TestAdaptiveValidation(t *testing.T) {
	d := prop.MustDNF(2, prop.Term{prop.Pos(0)})
	rng := rand.New(rand.NewSource(1))
	for _, bad := range [][2]float64{{0, 0.1}, {1.5, 0.1}, {0.1, 0}, {0.1, 1}} {
		if _, err := CountDNFAdaptive(d, bad[0], bad[1], rng); err == nil {
			t.Errorf("accepted eps=%v delta=%v", bad[0], bad[1])
		}
	}
	// Empty and contradictory formulas yield 0.
	res, err := CountDNFAdaptive(prop.DNF{NumVars: 3}, 0.1, 0.1, rng)
	if err != nil || res.Estimate.Sign() != 0 {
		t.Errorf("empty DNF: %v %v", res.Estimate, err)
	}
	res, err = CountDNFAdaptive(prop.MustDNF(2, prop.Term{prop.Pos(0), prop.Negd(0)}), 0.1, 0.1, rng)
	if err != nil || res.Estimate.Sign() != 0 {
		t.Errorf("contradictory DNF: %v %v", res.Estimate, err)
	}
}
