package karpluby

import (
	"context"
	"math/big"
	"math/rand"
	"reflect"
	"testing"

	"qrel/internal/mc"
	"qrel/internal/prop"
)

// Bit-identity of the compiled (bit-parallel batched) Karp–Luby
// estimators against the interpreted loops: same seed, same lanes —
// the same hit counts, estimates, and published snapshots.

func randProbs(rng *rand.Rand, n int) prop.ProbAssignment {
	p := make(prop.ProbAssignment, n)
	for i := range p {
		p[i] = big.NewRat(int64(1+rng.Intn(9)), 10)
	}
	return p
}

func TestCountDNFCompiledBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		d := randDNF(rng, 3+rng.Intn(10), 1+rng.Intn(6), 3)
		want, err := CountDNF(d, 0.3, 0.2, rand.New(rand.NewSource(99)))
		if err != nil {
			t.Fatalf("interpreted: %v", err)
		}
		got, err := CountDNFCompiled(d, 0.3, 0.2, rand.New(rand.NewSource(99)))
		if err != nil {
			t.Fatalf("compiled: %v", err)
		}
		if !sameCount(got, want) {
			t.Fatalf("trial %d: compiled %v/%d != interpreted %v/%d", trial, got.Estimate, got.Hits, want.Estimate, want.Hits)
		}
	}
}

func TestCountDNFParCompiledBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := randDNF(rng, 12, 6, 3)
	ctx := context.Background()
	var base CountResult
	for wi, w := range []int{1, 2, 4, 7} {
		var intSaves, compSaves []mc.LoopState
		collect := func(dst *[]mc.LoopState) *mc.Ckpt {
			return &mc.Ckpt{Every: 101, Save: func(st mc.LoopState) error {
				*dst = append(*dst, st)
				return nil
			}}
		}
		want, err := CountDNFPar(ctx, d, 0.3, 0.2, 1998, mc.Par{Workers: w}, collect(&intSaves))
		if err != nil {
			t.Fatalf("workers=%d interpreted: %v", w, err)
		}
		got, err := CountDNFParCompiled(ctx, d, 0.3, 0.2, 1998, mc.Par{Workers: w}, collect(&compSaves))
		if err != nil {
			t.Fatalf("workers=%d compiled: %v", w, err)
		}
		if !sameCount(got, want) {
			t.Fatalf("workers=%d: compiled %v/%d != interpreted %v/%d", w, got.Estimate, got.Hits, want.Estimate, want.Hits)
		}
		if !reflect.DeepEqual(intSaves[len(intSaves)-1], compSaves[len(compSaves)-1]) {
			t.Fatalf("workers=%d: final snapshots differ", w)
		}
		if w == 1 && !reflect.DeepEqual(intSaves, compSaves) {
			t.Fatal("sequential snapshot streams differ")
		}
		if wi == 0 {
			base = want
		} else if !sameCount(want, base) {
			t.Fatalf("workers=%d interpreted drifted from workers=1", w)
		}
	}
}

// TestCountDNFCompiledResumesInterpreted proves snapshot interchange:
// an interpreted mid-run snapshot resumed by the compiled estimator
// (and vice versa) finishes byte-identical to the uninterrupted run.
func TestCountDNFCompiledResumesInterpreted(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := randDNF(rng, 10, 5, 3)
	var saves []mc.LoopState
	want, err := CountDNFCk(d, 0.3, 0.2, mc.NewSource(7), &mc.Ckpt{Every: 53, Save: func(st mc.LoopState) error {
		saves = append(saves, st)
		return nil
	}})
	if err != nil {
		t.Fatalf("interpreted full run: %v", err)
	}
	if len(saves) < 3 {
		t.Fatalf("want several periodic snapshots, got %d", len(saves))
	}
	mid := saves[1]
	got, err := CountDNFCkCompiled(d, 0.3, 0.2, mc.NewSource(7), &mc.Ckpt{Resume: &mid})
	if err != nil {
		t.Fatalf("compiled resume: %v", err)
	}
	if !sameCount(got, want) {
		t.Fatalf("compiled resume of interpreted snapshot: %v/%d != %v/%d", got.Estimate, got.Hits, want.Estimate, want.Hits)
	}
	var compSaves []mc.LoopState
	if _, err := CountDNFCkCompiled(d, 0.3, 0.2, mc.NewSource(7), &mc.Ckpt{Every: 53, Save: func(st mc.LoopState) error {
		compSaves = append(compSaves, st)
		return nil
	}}); err != nil {
		t.Fatalf("compiled full run: %v", err)
	}
	mid2 := compSaves[1]
	got2, err := CountDNFCk(d, 0.3, 0.2, mc.NewSource(7), &mc.Ckpt{Resume: &mid2})
	if err != nil {
		t.Fatalf("interpreted resume: %v", err)
	}
	if !sameCount(got2, want) {
		t.Fatalf("interpreted resume of compiled snapshot differs")
	}
}

func TestProbDNFCompiledBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		d := randDNF(rng, 3+rng.Intn(10), 1+rng.Intn(6), 3)
		p := randProbs(rng, d.NumVars)
		want, err := ProbDNF(d, p, 0.3, 0.2, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatalf("interpreted: %v", err)
		}
		got, err := ProbDNFCompiled(d, p, 0.3, 0.2, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatalf("compiled: %v", err)
		}
		if !sameCount(got, want) {
			t.Fatalf("trial %d: compiled %v/%d != interpreted %v/%d", trial, got.Estimate, got.Hits, want.Estimate, want.Hits)
		}
	}
}

func TestProbDNFParCompiledBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d := randDNF(rng, 12, 6, 3)
	p := randProbs(rng, d.NumVars)
	ctx := context.Background()
	for _, w := range []int{1, 2, 4, 7} {
		want, err := ProbDNFPar(ctx, d, p, 0.3, 0.2, 1998, mc.Par{Workers: w}, nil)
		if err != nil {
			t.Fatalf("workers=%d interpreted: %v", w, err)
		}
		got, err := ProbDNFParCompiled(ctx, d, p, 0.3, 0.2, 1998, mc.Par{Workers: w}, nil)
		if err != nil {
			t.Fatalf("workers=%d compiled: %v", w, err)
		}
		if !sameCount(got, want) {
			t.Fatalf("workers=%d: compiled %v/%d != interpreted %v/%d", w, got.Estimate, got.Hits, want.Estimate, want.Hits)
		}
	}
}

// TestCountDNFCompiledRejectsWideTotals pins the uint64 fast-path
// boundary: a term-weight total above 63 bits reports ErrUnbatchable
// instead of silently degrading.
func TestCountDNFCompiledRejectsWideTotals(t *testing.T) {
	// A term with a single literal over 70 variables has 2^69
	// satisfying assignments — BitLen 70, past the uint64 fast path.
	d := prop.DNF{NumVars: 70, Terms: []prop.Term{{prop.Lit{Var: 0}}}}
	if _, err := CountDNFCompiled(d, 0.3, 0.2, rand.New(rand.NewSource(1))); err != ErrUnbatchable {
		t.Fatalf("want ErrUnbatchable, got %v", err)
	}
}
