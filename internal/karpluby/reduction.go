package karpluby

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"

	"qrel/internal/mc"
	"qrel/internal/prop"
)

// Reduction is the output of the Prob-kDNF → #DNF transformation in the
// proof of Theorem 5.3. For each variable X of the input formula with
// probability ν(X) = p/q, a block Ȳ of len(q) fresh bits is introduced;
// X is replaced by the DNF "val(Ȳ) < p" and ¬X by "val(Ȳ) ≥ p". An
// assignment to a block is *illegal* when val(Ȳ) ≥ q. PhiPP is the
// formula φ” = φ' ∨ ⋁_X "val(Ȳ_X) ≥ q_X", which is satisfied by every
// illegal assignment, so that
//
//	ν(φ) = (#φ'' − illegal) / legal,
//
// where legal = Π_X q_X and illegal = 2^bits − legal.
type Reduction struct {
	// PhiPP is φ'' over the fresh bit variables.
	PhiPP prop.DNF
	// Blocks maps each original variable to its bit block.
	Blocks []prop.BitBlock
	// Legal is Π q_X, the number of legal assignments.
	Legal *big.Int
	// Bits is the total number of fresh variables.
	Bits int
}

// Illegal returns 2^Bits − Legal.
func (r *Reduction) Illegal() *big.Int {
	total := new(big.Int).Lsh(big.NewInt(1), uint(r.Bits))
	return total.Sub(total, r.Legal)
}

// Recover converts an exact (or approximate) count of φ” into the
// probability ν(φ) = (#φ” − illegal)/legal.
func (r *Reduction) Recover(countPhiPP *big.Rat) *big.Rat {
	res := new(big.Rat).Sub(countPhiPP, new(big.Rat).SetInt(r.Illegal()))
	return res.Quo(res, new(big.Rat).SetInt(r.Legal))
}

// MaxReductionTerms bounds the size of φ” (the construction is
// exponential in the width k of the input but polynomial in its length).
const MaxReductionTerms = 1 << 20

// Reduce performs the Theorem 5.3 construction on a kDNF d with
// variable probabilities p. All probabilities must be rationals in
// [0, 1]; they need not be dyadic.
func Reduce(d prop.DNF, p prop.ProbAssignment) (*Reduction, error) {
	if err := p.Validate(d.NumVars); err != nil {
		return nil, err
	}
	red := &Reduction{Legal: big.NewInt(1)}
	// Allocate a bit block per original variable.
	numer := make([]*big.Int, d.NumVars)
	denom := make([]*big.Int, d.NumVars)
	red.Blocks = make([]prop.BitBlock, d.NumVars)
	next := 0
	for v := 0; v < d.NumVars; v++ {
		pv := p[v] // already reduced: big.Rat normalizes
		numer[v] = new(big.Int).Set(pv.Num())
		denom[v] = new(big.Int).Set(pv.Denom())
		// ℓ = ⌈log₂ q⌉ bits suffice to represent the legal values
		// 0..q−1; for dyadic q = 2^ℓ this leaves no illegal assignments
		// (the paper's "we are done" case). q = 1 yields an empty block:
		// the variable is a constant.
		ell := new(big.Int).Sub(denom[v], big.NewInt(1)).BitLen()
		red.Blocks[v] = prop.NewBitBlock(next, ell)
		next += ell
		red.Legal.Mul(red.Legal, denom[v])
	}
	red.Bits = next

	// φ': substitute the comparison DNFs into each term and distribute.
	var phiPrime []prop.Term
	for _, t := range d.Terms {
		nt, sat := t.Normalize()
		if !sat {
			continue
		}
		expanded := []prop.Term{{}}
		for _, l := range nt {
			blk := red.Blocks[l.Var]
			var sub []prop.Term
			var err error
			if l.Neg {
				sub, err = blk.GreaterEqTerms(numer[l.Var])
			} else {
				sub, err = blk.LessTerms(numer[l.Var])
			}
			if err != nil {
				return nil, err
			}
			var nextTerms []prop.Term
			for _, acc := range expanded {
				for _, s := range sub {
					product := append(acc.Clone(), s...)
					if np, ok := product.Normalize(); ok {
						nextTerms = append(nextTerms, np)
					}
					if len(nextTerms) > MaxReductionTerms {
						return nil, fmt.Errorf("%w: Theorem 5.3 distribution exceeds %d terms", prop.ErrBudget, MaxReductionTerms)
					}
				}
			}
			expanded = nextTerms
		}
		phiPrime = append(phiPrime, expanded...)
		if len(phiPrime) > MaxReductionTerms {
			return nil, fmt.Errorf("%w: Theorem 5.3 reduction exceeds %d terms", prop.ErrBudget, MaxReductionTerms)
		}
	}

	// φ'' = φ' ∨ ⋁_X "val(Ȳ_X) ≥ q_X" — the illegal assignments are all
	// satisfying, so the count of φ'' splits cleanly.
	terms := phiPrime
	for v := 0; v < d.NumVars; v++ {
		ge, err := red.Blocks[v].GreaterEqTerms(denom[v])
		if err != nil {
			return nil, err
		}
		terms = append(terms, ge...)
	}
	red.PhiPP = prop.DNF{NumVars: red.Bits, Terms: terms}.Simplify()
	return red, nil
}

// ProbViaReduction runs the full Theorem 5.3 pipeline: Reduce, estimate
// #φ” with the Karp–Luby #DNF FPTRAS, and recover ν(φ). This is the
// paper's own FPTRAS for Prob-kDNF.
func ProbViaReduction(d prop.DNF, p prop.ProbAssignment, eps, delta float64, rng *rand.Rand) (CountResult, error) {
	red, err := Reduce(d, p)
	if err != nil {
		return CountResult{}, err
	}
	res, err := CountDNF(red.PhiPP, eps, delta, rng)
	if err != nil {
		return CountResult{}, err
	}
	res.Estimate = red.Recover(res.Estimate)
	return res, nil
}

// ProbViaReductionPar is ProbViaReduction with the #DNF estimation step
// run on the lane-split parallel runtime; see CountDNFPar for the
// determinism contract.
func ProbViaReductionPar(ctx context.Context, d prop.DNF, p prop.ProbAssignment, eps, delta float64, seed int64, par mc.Par, ck *mc.Ckpt) (CountResult, error) {
	red, err := Reduce(d, p)
	if err != nil {
		return CountResult{}, err
	}
	res, err := CountDNFPar(ctx, red.PhiPP, eps, delta, seed, par, ck)
	if err != nil {
		return CountResult{}, err
	}
	res.Estimate = red.Recover(res.Estimate)
	return res, nil
}

// ProbExactViaReduction runs the Theorem 5.3 reduction and counts φ”
// exactly by brute force — usable only for small instances; it exists
// to validate the reduction itself in tests and experiment E5.
func ProbExactViaReduction(d prop.DNF, p prop.ProbAssignment, maxVars int) (*big.Rat, error) {
	red, err := Reduce(d, p)
	if err != nil {
		return nil, err
	}
	count, err := red.PhiPP.CountBruteForce(maxVars)
	if err != nil {
		return nil, err
	}
	return red.Recover(new(big.Rat).SetInt(count)), nil
}
