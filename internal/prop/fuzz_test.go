package prop

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseDNF checks the DIMACS codec never panics and round-trips.
func FuzzParseDNF(f *testing.F) {
	seeds := []string{
		"p dnf 3 2\n1 -2 0\n3 0\n",
		"p dnf 0 0\n",
		"c comment\np dnf 2 1\n-1 -2 0\n",
		"p dnf 2 1\n9 0\n",
		"1 0\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d, err := ParseDNF(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteDNF(&buf, d); err != nil {
			t.Fatalf("WriteDNF failed: %v", err)
		}
		back, err := ParseDNF(&buf)
		if err != nil {
			t.Fatalf("round trip does not reparse: %v", err)
		}
		if back.NumVars != d.NumVars || len(back.Terms) != len(d.Terms) {
			t.Fatal("round trip changed shape")
		}
	})
}
