package prop

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// evalBlockDNF checks a comparison DNF against all 2^ell values.
func checkComparisonDNF(t *testing.T, ell int, bound int64, terms []Term, want func(v int64) bool, label string) {
	t.Helper()
	block := NewBitBlock(0, ell)
	d := DNF{NumVars: ell, Terms: terms}
	for m := int64(0); m < 1<<uint(ell); m++ {
		a := make([]bool, ell)
		// Fill so that val(block) == m.
		for i := 0; i < ell; i++ {
			a[block.varAt(i)] = m&(1<<uint(i)) != 0
		}
		if got := block.Val(a).Int64(); got != m {
			t.Fatalf("Val computed %d, want %d", got, m)
		}
		if got := d.Eval(a); got != want(m) {
			t.Fatalf("%s: value %d bound %d: DNF says %v, want %v (terms %v)", label, m, bound, got, want(m), terms)
		}
	}
}

func TestLessTermsExhaustive(t *testing.T) {
	for ell := 1; ell <= 5; ell++ {
		for b := int64(0); b <= 1<<uint(ell); b++ {
			bound := big.NewInt(b)
			terms, err := NewBitBlock(0, ell).LessTerms(bound)
			if err != nil {
				t.Fatal(err)
			}
			checkComparisonDNF(t, ell, b, terms, func(v int64) bool { return v < b }, "less")
		}
	}
}

func TestGreaterEqTermsExhaustive(t *testing.T) {
	for ell := 1; ell <= 5; ell++ {
		for b := int64(0); b <= 1<<uint(ell); b++ {
			bound := big.NewInt(b)
			terms, err := NewBitBlock(0, ell).GreaterEqTerms(bound)
			if err != nil {
				t.Fatal(err)
			}
			checkComparisonDNF(t, ell, b, terms, func(v int64) bool { return v >= b }, "geq")
		}
	}
}

func TestComparisonTermsComplementary(t *testing.T) {
	// "val < b" and "val >= b" must partition the assignments exactly.
	f := func(bRaw uint8) bool {
		ell := 8
		b := big.NewInt(int64(bRaw))
		block := NewBitBlock(0, ell)
		lt, err1 := block.LessTerms(b)
		ge, err2 := block.GreaterEqTerms(b)
		if err1 != nil || err2 != nil {
			return false
		}
		dLt := DNF{NumVars: ell, Terms: lt}
		dGe := DNF{NumVars: ell, Terms: ge}
		cLt, err1 := dLt.CountBruteForce(10)
		cGe, err2 := dGe.CountBruteForce(10)
		if err1 != nil || err2 != nil {
			return false
		}
		sum := new(big.Int).Add(cLt, cGe)
		return sum.Int64() == 256 && cLt.Int64() == int64(bRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

func TestComparisonSizeQuadratic(t *testing.T) {
	// Paper: the comparison DNFs have length O(ell^2).
	rng := rand.New(rand.NewSource(5))
	for ell := 2; ell <= 24; ell++ {
		bound := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(ell)))
		block := NewBitBlock(0, ell)
		lt, err := block.LessTerms(bound)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, tm := range lt {
			total += len(tm)
			if len(tm) > ell {
				t.Fatalf("term longer than ell: %v", tm)
			}
		}
		if len(lt) > ell || total > ell*ell {
			t.Fatalf("ell=%d: %d terms, %d literals — exceeds O(ell^2) shape", ell, len(lt), total)
		}
	}
}

func TestComparisonEdgeBounds(t *testing.T) {
	block := NewBitBlock(0, 3)
	// bound 0: nothing is < 0; everything is >= 0.
	lt, _ := block.LessTerms(big.NewInt(0))
	if len(lt) != 0 {
		t.Errorf("LessTerms(0) = %v, want empty", lt)
	}
	ge, _ := block.GreaterEqTerms(big.NewInt(0))
	d := DNF{NumVars: 3, Terms: ge}
	c, _ := d.CountBruteForce(10)
	if c.Int64() != 8 {
		t.Errorf("GreaterEqTerms(0) counts %v, want 8", c)
	}
	// bound 2^ell: everything is < it; nothing is >= it.
	lt, _ = block.LessTerms(big.NewInt(8))
	d = DNF{NumVars: 3, Terms: lt}
	c, _ = d.CountBruteForce(10)
	if c.Int64() != 8 {
		t.Errorf("LessTerms(8) counts %v, want 8", c)
	}
	ge, _ = block.GreaterEqTerms(big.NewInt(8))
	if len(ge) != 0 {
		t.Errorf("GreaterEqTerms(8) = %v, want empty", ge)
	}
	// Negative bounds rejected.
	if _, err := block.LessTerms(big.NewInt(-1)); err == nil {
		t.Error("negative bound accepted by LessTerms")
	}
	if _, err := block.GreaterEqTerms(big.NewInt(-1)); err == nil {
		t.Error("negative bound accepted by GreaterEqTerms")
	}
}

func TestBitBlockOffset(t *testing.T) {
	// Blocks not starting at variable 0 must still read their own bits.
	block := NewBitBlock(3, 4)
	if block.Len() != 4 {
		t.Fatalf("Len = %d", block.Len())
	}
	a := make([]bool, 7)
	a[3] = true // most significant bit of the block
	if got := block.Val(a).Int64(); got != 8 {
		t.Errorf("Val = %d, want 8", got)
	}
	a[6] = true
	if got := block.Val(a).Int64(); got != 9 {
		t.Errorf("Val = %d, want 9", got)
	}
}
