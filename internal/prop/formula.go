package prop

import (
	"context"
	"fmt"
	"strings"
)

// Formula is an arbitrary propositional formula tree. It is the
// intermediate representation between grounded first-order matrices and
// the DNF consumed by the counting engines.
type Formula interface {
	// Eval returns the truth value under the assignment.
	Eval(a []bool) bool
	// String renders the formula.
	String() string
	isFormula()
}

// FVar is a propositional variable.
type FVar int

// FTrue and FFalse are the propositional constants.
type (
	FTrue  struct{}
	FFalse struct{}
)

// FNot is negation.
type FNot struct{ F Formula }

// FAnd is an n-ary conjunction; the empty conjunction is true.
type FAnd []Formula

// FOr is an n-ary disjunction; the empty disjunction is false.
type FOr []Formula

func (FVar) isFormula()   {}
func (FTrue) isFormula()  {}
func (FFalse) isFormula() {}
func (FNot) isFormula()   {}
func (FAnd) isFormula()   {}
func (FOr) isFormula()    {}

// Eval implements Formula.
func (v FVar) Eval(a []bool) bool { return a[int(v)] }

// Eval implements Formula.
func (FTrue) Eval([]bool) bool { return true }

// Eval implements Formula.
func (FFalse) Eval([]bool) bool { return false }

// Eval implements Formula.
func (n FNot) Eval(a []bool) bool { return !n.F.Eval(a) }

// Eval implements Formula.
func (c FAnd) Eval(a []bool) bool {
	for _, f := range c {
		if !f.Eval(a) {
			return false
		}
	}
	return true
}

// Eval implements Formula.
func (d FOr) Eval(a []bool) bool {
	for _, f := range d {
		if f.Eval(a) {
			return true
		}
	}
	return false
}

func (v FVar) String() string { return fmt.Sprintf("x%d", int(v)) }
func (FTrue) String() string  { return "true" }
func (FFalse) String() string { return "false" }
func (n FNot) String() string { return "!" + n.F.String() }
func (c FAnd) String() string { return joinFormulas([]Formula(c), " & ", "true") }
func (d FOr) String() string  { return joinFormulas([]Formula(d), " | ", "false") }

func joinFormulas(fs []Formula, sep, empty string) string {
	if len(fs) == 0 {
		return empty
	}
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = "(" + f.String() + ")"
	}
	return strings.Join(parts, sep)
}

// MaxVar returns the largest variable index occurring in f, or -1 when
// none occurs.
func MaxVar(f Formula) int {
	switch g := f.(type) {
	case FVar:
		return int(g)
	case FNot:
		return MaxVar(g.F)
	case FAnd:
		m := -1
		for _, h := range g {
			if v := MaxVar(h); v > m {
				m = v
			}
		}
		return m
	case FOr:
		m := -1
		for _, h := range g {
			if v := MaxVar(h); v > m {
				m = v
			}
		}
		return m
	default:
		return -1
	}
}

// ToDNF converts the formula into an equivalent simplified DNF over
// numVars variables by pushing negations to the literals and
// distributing. maxTerms bounds the intermediate term count; ErrBudget
// is returned (wrapped) when exceeded.
func ToDNF(f Formula, numVars, maxTerms int) (DNF, error) {
	return ToDNFCtx(context.Background(), f, numVars, maxTerms)
}

// ToDNFCtx is ToDNF with cooperative cancellation: the distribution —
// the one potentially exponential loop of the grounding pipeline —
// polls ctx as terms accumulate and stops with ctx's error once it is
// done.
func ToDNFCtx(ctx context.Context, f Formula, numVars, maxTerms int) (DNF, error) {
	c := &dnfConv{ctx: ctx, maxTerms: maxTerms}
	terms, err := c.terms(f, false)
	if err != nil {
		return DNF{}, err
	}
	d := DNF{NumVars: numVars, Terms: terms}
	if len(terms) <= 4096 {
		// Full simplification (including quadratic subsumption) only for
		// moderate sizes; larger results keep duplicate/subsumed terms,
		// which all downstream algorithms tolerate.
		d = d.Simplify()
	}
	for _, t := range d.Terms {
		for _, l := range t {
			if l.Var >= numVars {
				return DNF{}, fmt.Errorf("prop: formula variable x%d outside declared range [0,%d)", l.Var, numVars)
			}
		}
	}
	return d, nil
}

// dnfConv carries the budget and cancellation context through the DNF
// distribution recursion.
type dnfConv struct {
	ctx      context.Context
	maxTerms int
	steps    int
}

// poll checks the context every few hundred distribution steps.
func (c *dnfConv) poll() error {
	if c.steps++; c.steps&255 != 0 {
		return nil
	}
	return c.ctx.Err()
}

// terms returns the terms of the DNF of f (negated when neg is set).
func (c *dnfConv) terms(f Formula, neg bool) ([]Term, error) {
	switch g := f.(type) {
	case FVar:
		return []Term{{Lit{Var: int(g), Neg: neg}}}, nil
	case FTrue:
		if neg {
			return nil, nil
		}
		return []Term{{}}, nil
	case FFalse:
		if neg {
			return []Term{{}}, nil
		}
		return nil, nil
	case FNot:
		return c.terms(g.F, !neg)
	case FAnd:
		// De Morgan: a negated conjunction distributes as a disjunction.
		if neg {
			return c.or([]Formula(g), true)
		}
		return c.and([]Formula(g), false)
	case FOr:
		if neg {
			return c.and([]Formula(g), true)
		}
		return c.or([]Formula(g), false)
	default:
		return nil, fmt.Errorf("prop: unknown formula node %T", f)
	}
}

func (c *dnfConv) or(fs []Formula, neg bool) ([]Term, error) {
	var out []Term
	for _, f := range fs {
		ts, err := c.terms(f, neg)
		if err != nil {
			return nil, err
		}
		out = append(out, ts...)
		if len(out) > c.maxTerms {
			return nil, fmt.Errorf("%w: DNF conversion exceeds %d terms", ErrBudget, c.maxTerms)
		}
	}
	return out, nil
}

func (c *dnfConv) and(fs []Formula, neg bool) ([]Term, error) {
	out := []Term{{}}
	for _, f := range fs {
		ts, err := c.terms(f, neg)
		if err != nil {
			return nil, err
		}
		var next []Term
		for _, a := range out {
			if err := c.poll(); err != nil {
				return nil, fmt.Errorf("prop: DNF conversion canceled: %w", err)
			}
			for _, b := range ts {
				prod := append(a.Clone(), b...)
				if nt, sat := prod.Normalize(); sat {
					next = append(next, nt)
				}
				if len(next) > c.maxTerms {
					return nil, fmt.Errorf("%w: DNF conversion exceeds %d terms", ErrBudget, c.maxTerms)
				}
			}
		}
		out = next
	}
	return out, nil
}

// Fold substitutes the fixed variables into f and constant-folds the
// result: conjunctions containing false collapse, satisfied disjuncts
// collapse, and double negations of constants vanish. Grounded query
// lineages call this with the deterministic atoms (nu ∈ {0, 1}) of an
// unreliable database, which typically shrinks the lineage from the
// full ground-atom space to the uncertain atoms only.
func Fold(f Formula, fixed map[int]bool) Formula {
	switch g := f.(type) {
	case FVar:
		if v, ok := fixed[int(g)]; ok {
			if v {
				return FTrue{}
			}
			return FFalse{}
		}
		return g
	case FTrue, FFalse:
		return g
	case FNot:
		inner := Fold(g.F, fixed)
		switch inner.(type) {
		case FTrue:
			return FFalse{}
		case FFalse:
			return FTrue{}
		}
		return FNot{F: inner}
	case FAnd:
		var parts FAnd
		for _, h := range g {
			sub := Fold(h, fixed)
			switch sub.(type) {
			case FTrue:
				continue
			case FFalse:
				return FFalse{}
			}
			parts = append(parts, sub)
		}
		if len(parts) == 0 {
			return FTrue{}
		}
		if len(parts) == 1 {
			return parts[0]
		}
		return parts
	case FOr:
		var parts FOr
		for _, h := range g {
			sub := Fold(h, fixed)
			switch sub.(type) {
			case FFalse:
				continue
			case FTrue:
				return FTrue{}
			}
			parts = append(parts, sub)
		}
		if len(parts) == 0 {
			return FFalse{}
		}
		if len(parts) == 1 {
			return parts[0]
		}
		return parts
	default:
		return g
	}
}
