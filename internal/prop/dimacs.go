package prop

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a DIMACS-style text codec for DNF (and CNF)
// formulas, used by the command-line tools. The format mirrors DIMACS
// CNF: a header "p dnf <vars> <terms>" followed by one term per line,
// literals as 1-based integers (negative = negated), terminated by 0.
// Lines starting with 'c' are comments.

// ParseDNF reads a DNF formula in DIMACS-style format.
func ParseDNF(r io.Reader) (DNF, error) {
	return parseDimacs(r, "dnf")
}

// ParseCNF reads a CNF formula in DIMACS format and returns it as a CNF.
func ParseCNF(r io.Reader) (CNF, error) {
	d, err := parseDimacs(r, "cnf")
	if err != nil {
		return CNF{}, err
	}
	clauses := make([]Clause, len(d.Terms))
	for i, t := range d.Terms {
		clauses[i] = Clause(t)
	}
	return CNF{NumVars: d.NumVars, Clauses: clauses}, nil
}

func parseDimacs(r io.Reader, kind string) (DNF, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		d         DNF
		gotHeader bool
		declared  int
		cur       Term
		line      int
	)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		if strings.HasPrefix(text, "p") {
			if gotHeader {
				return DNF{}, fmt.Errorf("prop: line %d: duplicate header", line)
			}
			fields := strings.Fields(text)
			if len(fields) != 4 || fields[1] != kind {
				return DNF{}, fmt.Errorf("prop: line %d: want header %q, got %q", line, "p "+kind+" <vars> <terms>", text)
			}
			nv, err1 := strconv.Atoi(fields[2])
			nt, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || nv < 0 || nt < 0 {
				return DNF{}, fmt.Errorf("prop: line %d: bad header numbers %q", line, text)
			}
			d.NumVars = nv
			declared = nt
			gotHeader = true
			continue
		}
		if !gotHeader {
			return DNF{}, fmt.Errorf("prop: line %d: literal data before header", line)
		}
		for _, f := range strings.Fields(text) {
			v, err := strconv.Atoi(f)
			if err != nil {
				return DNF{}, fmt.Errorf("prop: line %d: bad literal %q", line, f)
			}
			if v == 0 {
				d.Terms = append(d.Terms, cur)
				cur = nil
				continue
			}
			neg := v < 0
			if neg {
				v = -v
			}
			if v > d.NumVars {
				return DNF{}, fmt.Errorf("prop: line %d: variable %d exceeds declared count %d", line, v, d.NumVars)
			}
			cur = append(cur, Lit{Var: v - 1, Neg: neg})
		}
	}
	if err := sc.Err(); err != nil {
		return DNF{}, fmt.Errorf("prop: reading dimacs: %w", err)
	}
	if !gotHeader {
		return DNF{}, fmt.Errorf("prop: missing header")
	}
	if len(cur) > 0 {
		return DNF{}, fmt.Errorf("prop: unterminated final term (missing 0)")
	}
	if declared != len(d.Terms) {
		return DNF{}, fmt.Errorf("prop: header declares %d terms, found %d", declared, len(d.Terms))
	}
	return d, nil
}

// WriteDNF writes the formula in DIMACS-style DNF format.
func WriteDNF(w io.Writer, d DNF) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p dnf %d %d\n", d.NumVars, len(d.Terms))
	for _, t := range d.Terms {
		for _, l := range t {
			v := l.Var + 1
			if l.Neg {
				v = -v
			}
			fmt.Fprintf(bw, "%d ", v)
		}
		fmt.Fprintln(bw, 0)
	}
	return bw.Flush()
}
