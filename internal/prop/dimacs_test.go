package prop

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestParseDNFBasic(t *testing.T) {
	src := `c a comment
p dnf 3 2
1 -2 0
3 0
`
	d, err := ParseDNF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumVars != 3 || len(d.Terms) != 2 {
		t.Fatalf("parsed %v", d)
	}
	if d.Terms[0][0] != Pos(0) || d.Terms[0][1] != Negd(1) || d.Terms[1][0] != Pos(2) {
		t.Errorf("literals wrong: %v", d.Terms)
	}
}

func TestParseDNFErrors(t *testing.T) {
	cases := map[string]string{
		"missing header":    "1 0\n",
		"bad kind":          "p cnf 2 1\n1 0\n",
		"bad var count":     "p dnf x 1\n1 0\n",
		"var out of range":  "p dnf 2 1\n3 0\n",
		"term count wrong":  "p dnf 2 2\n1 0\n",
		"unterminated term": "p dnf 2 1\n1\n",
		"duplicate header":  "p dnf 2 1\np dnf 2 1\n1 0\n",
		"bad literal":       "p dnf 2 1\nzz 0\n",
		"empty input":       "",
	}
	for name, src := range cases {
		if _, err := ParseDNF(strings.NewReader(src)); err == nil {
			t.Errorf("%s: no error for %q", name, src)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 50; iter++ {
		d := randDNF(rng, 2+rng.Intn(10), 1+rng.Intn(10), 4)
		var buf bytes.Buffer
		if err := WriteDNF(&buf, d); err != nil {
			t.Fatal(err)
		}
		back, err := ParseDNF(&buf)
		if err != nil {
			t.Fatalf("iter %d: reparse: %v\ntext:\n%s", iter, err, buf.String())
		}
		if back.NumVars != d.NumVars || len(back.Terms) != len(d.Terms) {
			t.Fatalf("iter %d: shape changed", iter)
		}
		for i := range d.Terms {
			if len(back.Terms[i]) != len(d.Terms[i]) {
				t.Fatalf("iter %d: term %d changed", iter, i)
			}
			for j := range d.Terms[i] {
				if back.Terms[i][j] != d.Terms[i][j] {
					t.Fatalf("iter %d: literal %d/%d changed", iter, i, j)
				}
			}
		}
	}
}

func TestParseCNF(t *testing.T) {
	src := "p cnf 2 2\n1 2 0\n-1 0\n"
	c, err := ParseCNF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumVars != 2 || len(c.Clauses) != 2 {
		t.Fatalf("parsed %v", c)
	}
	if !c.Eval([]bool{false, true}) || c.Eval([]bool{true, true}) {
		t.Error("CNF evaluation wrong")
	}
}

func TestCNFNegateAndToDNF(t *testing.T) {
	// (x0 | x1) & (!x0 | x2) over 3 vars.
	c := CNF{NumVars: 3, Clauses: []Clause{
		{Pos(0), Pos(1)},
		{Negd(0), Pos(2)},
	}}
	neg := c.Negate()
	d, err := c.ToDNF(1000)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 8; m++ {
		a := []bool{m&1 != 0, m&2 != 0, m&4 != 0}
		if c.Eval(a) != d.Eval(a) {
			t.Errorf("ToDNF differs at %v", a)
		}
		if c.Eval(a) == neg.Eval(a) {
			t.Errorf("Negate not complementary at %v", a)
		}
	}
	if got := c.String(); got != "(x0 | x1) & (!x0 | x2)" {
		t.Errorf("CNF String = %q", got)
	}
	if (CNF{}).String() != "true" || (Clause{}).String() != "false" {
		t.Error("empty CNF/clause rendering wrong")
	}
}

func TestCNFToDNFBudget(t *testing.T) {
	var c CNF
	c.NumVars = 30
	for i := 0; i < 30; i += 2 {
		c.Clauses = append(c.Clauses, Clause{Pos(i), Pos(i + 1)})
	}
	if _, err := c.ToDNF(50); err == nil {
		t.Error("budget not enforced on CNF distribution")
	}
}
