// Package prop implements the propositional substrate of the paper: DNF
// and CNF formulas over integer-indexed variables, exact model counting,
// exact probability computation (the problems #C and Prob-C of
// Definition 5.1), and the binary-comparison DNF constructions used in
// the proof of Theorem 5.3.
//
// Variables are identified by dense non-negative integers. An assignment
// is a []bool indexed by variable.
package prop

import (
	"fmt"
	"sort"
	"strings"
)

// Lit is a propositional literal: a variable index with an optional
// negation.
type Lit struct {
	Var int
	Neg bool
}

// Pos returns the positive literal of v.
func Pos(v int) Lit { return Lit{Var: v} }

// Negd returns the negative literal of v.
func Negd(v int) Lit { return Lit{Var: v, Neg: true} }

// Negate returns the complementary literal.
func (l Lit) Negate() Lit { return Lit{Var: l.Var, Neg: !l.Neg} }

// Eval returns the literal's truth value under the assignment.
func (l Lit) Eval(a []bool) bool { return a[l.Var] != l.Neg }

// String renders the literal as "x3" or "!x3".
func (l Lit) String() string {
	if l.Neg {
		return fmt.Sprintf("!x%d", l.Var)
	}
	return fmt.Sprintf("x%d", l.Var)
}

// Term is a conjunction of literals (a disjunct of a DNF formula).
type Term []Lit

// Eval reports whether all literals of the term hold under a.
func (t Term) Eval(a []bool) bool {
	for _, l := range t {
		if !l.Eval(a) {
			return false
		}
	}
	return true
}

// Clone returns a copy of the term.
func (t Term) Clone() Term { return append(Term(nil), t...) }

// Normalize sorts the literals by variable, removes duplicates, and
// reports whether the term is satisfiable (i.e. contains no
// complementary pair). An unsatisfiable term is returned unchanged
// beyond sorting.
func (t Term) Normalize() (Term, bool) {
	c := t.Clone()
	sort.Slice(c, func(i, j int) bool {
		if c[i].Var != c[j].Var {
			return c[i].Var < c[j].Var
		}
		return !c[i].Neg && c[j].Neg
	})
	out := c[:0]
	for i, l := range c {
		if i > 0 && l == c[i-1] {
			continue
		}
		if i > 0 && l.Var == c[i-1].Var && l.Neg != c[i-1].Neg {
			return c, false
		}
		out = append(out, l)
	}
	return out, true
}

// Vars returns the sorted distinct variables of the term.
func (t Term) Vars() []int {
	seen := map[int]struct{}{}
	for _, l := range t {
		seen[l.Var] = struct{}{}
	}
	vars := make([]int, 0, len(seen))
	for v := range seen {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	return vars
}

// String renders the term as "x0 & !x2"; the empty term renders as
// "true" (it is the empty conjunction).
func (t Term) String() string {
	if len(t) == 0 {
		return "true"
	}
	parts := make([]string, len(t))
	for i, l := range t {
		parts[i] = l.String()
	}
	return strings.Join(parts, " & ")
}

// DNF is a propositional formula in disjunctive normal form: a
// disjunction of terms over variables 0..NumVars-1. A DNF with no terms
// is the constant false; a DNF containing an empty term is a tautology.
type DNF struct {
	NumVars int
	Terms   []Term
}

// NewDNF builds a DNF, validating that every literal's variable lies in
// [0, numVars).
func NewDNF(numVars int, terms ...Term) (DNF, error) {
	d := DNF{NumVars: numVars, Terms: terms}
	for _, t := range terms {
		for _, l := range t {
			if l.Var < 0 || l.Var >= numVars {
				return DNF{}, fmt.Errorf("prop: literal %v outside variable range [0,%d)", l, numVars)
			}
		}
	}
	return d, nil
}

// MustDNF is NewDNF that panics on error.
func MustDNF(numVars int, terms ...Term) DNF {
	d, err := NewDNF(numVars, terms...)
	if err != nil {
		panic(err)
	}
	return d
}

// Eval reports whether some term holds under a.
func (d DNF) Eval(a []bool) bool {
	for _, t := range d.Terms {
		if t.Eval(a) {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the formula.
func (d DNF) Clone() DNF {
	terms := make([]Term, len(d.Terms))
	for i, t := range d.Terms {
		terms[i] = t.Clone()
	}
	return DNF{NumVars: d.NumVars, Terms: terms}
}

// Width returns the maximum number of literals in any term — the k for
// which the formula is a kDNF. The empty formula has width 0.
func (d DNF) Width() int {
	w := 0
	for _, t := range d.Terms {
		if len(t) > w {
			w = len(t)
		}
	}
	return w
}

// Simplify normalizes every term, drops unsatisfiable terms, and removes
// subsumed terms (a term is subsumed if a subset of its literals already
// forms another term). The result is logically equivalent to d.
func (d DNF) Simplify() DNF {
	norm := make([]Term, 0, len(d.Terms))
	for _, t := range d.Terms {
		nt, sat := t.Normalize()
		if !sat {
			continue
		}
		norm = append(norm, nt)
	}
	// Subsumption: sort by length so potential subsumers come first.
	sort.Slice(norm, func(i, j int) bool { return len(norm[i]) < len(norm[j]) })
	kept := make([]Term, 0, len(norm))
	for _, t := range norm {
		subsumed := false
		for _, s := range kept {
			if termSubset(s, t) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			kept = append(kept, t)
		}
	}
	return DNF{NumVars: d.NumVars, Terms: kept}
}

// termSubset reports whether every literal of s occurs in t. Both terms
// must be normalized (sorted by variable).
func termSubset(s, t Term) bool {
	i := 0
	for _, l := range t {
		if i < len(s) && s[i] == l {
			i++
		}
	}
	return i == len(s)
}

// Or returns the disjunction of d and e; the variable count is the max
// of the two.
func (d DNF) Or(e DNF) DNF {
	n := d.NumVars
	if e.NumVars > n {
		n = e.NumVars
	}
	terms := make([]Term, 0, len(d.Terms)+len(e.Terms))
	for _, t := range d.Terms {
		terms = append(terms, t.Clone())
	}
	for _, t := range e.Terms {
		terms = append(terms, t.Clone())
	}
	return DNF{NumVars: n, Terms: terms}
}

// AndTerm conjoins the literals of extra onto every term of d
// (distributing the conjunction over the disjunction). Unsatisfiable
// products are dropped.
func (d DNF) AndTerm(extra Term) DNF {
	out := DNF{NumVars: d.NumVars}
	for _, l := range extra {
		if l.Var >= out.NumVars {
			out.NumVars = l.Var + 1
		}
	}
	for _, t := range d.Terms {
		prod := append(t.Clone(), extra...)
		if nt, sat := prod.Normalize(); sat {
			out.Terms = append(out.Terms, nt)
		}
	}
	return out
}

// Vars returns the sorted distinct variables occurring in the formula.
func (d DNF) Vars() []int {
	seen := map[int]struct{}{}
	for _, t := range d.Terms {
		for _, l := range t {
			seen[l.Var] = struct{}{}
		}
	}
	vars := make([]int, 0, len(seen))
	for v := range seen {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	return vars
}

// String renders the formula as "(x0 & x1) | (!x2)"; the empty formula
// renders as "false".
func (d DNF) String() string {
	if len(d.Terms) == 0 {
		return "false"
	}
	parts := make([]string, len(d.Terms))
	for i, t := range d.Terms {
		parts[i] = "(" + t.String() + ")"
	}
	return strings.Join(parts, " | ")
}

// Clause is a disjunction of literals (a conjunct of a CNF formula).
type Clause []Lit

// Eval reports whether some literal of the clause holds under a.
func (c Clause) Eval(a []bool) bool {
	for _, l := range c {
		if l.Eval(a) {
			return true
		}
	}
	return false
}

// String renders the clause as "x0 | !x1"; the empty clause renders as
// "false".
func (c Clause) String() string {
	if len(c) == 0 {
		return "false"
	}
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.String()
	}
	return strings.Join(parts, " | ")
}

// CNF is a propositional formula in conjunctive normal form. A CNF with
// no clauses is the constant true.
type CNF struct {
	NumVars int
	Clauses []Clause
}

// Eval reports whether every clause holds under a.
func (c CNF) Eval(a []bool) bool {
	for _, cl := range c.Clauses {
		if !cl.Eval(a) {
			return false
		}
	}
	return true
}

// Negate returns the DNF equivalent to the negation of the CNF: each
// clause's negation is a term. (De Morgan; no blowup.)
func (c CNF) Negate() DNF {
	terms := make([]Term, len(c.Clauses))
	for i, cl := range c.Clauses {
		t := make(Term, len(cl))
		for j, l := range cl {
			t[j] = l.Negate()
		}
		terms[i] = t
	}
	return DNF{NumVars: c.NumVars, Terms: terms}
}

// ToDNF distributes the CNF into an equivalent DNF. The result may be
// exponentially larger; maxTerms bounds the intermediate size and an
// error is returned when exceeded.
func (c CNF) ToDNF(maxTerms int) (DNF, error) {
	cur := DNF{NumVars: c.NumVars, Terms: []Term{{}}}
	for _, cl := range c.Clauses {
		next := DNF{NumVars: c.NumVars}
		for _, t := range cur.Terms {
			for _, l := range cl {
				prod := append(t.Clone(), l)
				if nt, sat := prod.Normalize(); sat {
					next.Terms = append(next.Terms, nt)
				}
			}
			if len(next.Terms) > maxTerms {
				return DNF{}, fmt.Errorf("prop: CNF-to-DNF blowup exceeds %d terms", maxTerms)
			}
		}
		cur = next.Simplify()
	}
	return cur, nil
}

// String renders the CNF as "(x0 | x1) & (!x2)"; empty renders "true".
func (c CNF) String() string {
	if len(c.Clauses) == 0 {
		return "true"
	}
	parts := make([]string, len(c.Clauses))
	for i, cl := range c.Clauses {
		parts[i] = "(" + cl.String() + ")"
	}
	return strings.Join(parts, " & ")
}
