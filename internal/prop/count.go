package prop

import (
	"fmt"
	"math/big"
)

// ErrBudget is returned (wrapped) by exponential-time exact algorithms
// when the instance exceeds the caller-supplied budget.
var ErrBudget = fmt.Errorf("prop: instance exceeds budget for exact computation")

// CountBruteForce computes #DNF — the number of satisfying assignments
// over all NumVars variables — by enumerating the 2^NumVars assignments.
// It fails with ErrBudget if NumVars > maxVars.
func (d DNF) CountBruteForce(maxVars int) (*big.Int, error) {
	if d.NumVars > maxVars || d.NumVars > 62 {
		return nil, fmt.Errorf("%w: %d variables (max %d)", ErrBudget, d.NumVars, maxVars)
	}
	count := big.NewInt(0)
	one := big.NewInt(1)
	a := make([]bool, d.NumVars)
	total := uint64(1) << uint(d.NumVars)
	for m := uint64(0); m < total; m++ {
		for i := range a {
			a[i] = m&(1<<uint(i)) != 0
		}
		if d.Eval(a) {
			count.Add(count, one)
		}
	}
	return count, nil
}

// CountInclusionExclusion computes #DNF by inclusion–exclusion over the
// terms: |sat(T1) ∪ ... ∪ Tm| = Σ_{∅≠S} (−1)^{|S|+1} |sat(∧S)|, where
// the intersection count is 2^(NumVars − fixed) when the combined term
// is satisfiable and 0 otherwise. Exponential in the number of terms; it
// fails with ErrBudget if len(Terms) > maxTerms.
func (d DNF) CountInclusionExclusion(maxTerms int) (*big.Int, error) {
	m := len(d.Terms)
	if m > maxTerms || m > 30 {
		return nil, fmt.Errorf("%w: %d terms (max %d)", ErrBudget, m, maxTerms)
	}
	total := big.NewInt(0)
	for s := uint64(1); s < uint64(1)<<uint(m); s++ {
		var combined Term
		bits := 0
		for i := 0; i < m; i++ {
			if s&(1<<uint(i)) != 0 {
				combined = append(combined, d.Terms[i]...)
				bits++
			}
		}
		nt, sat := combined.Normalize()
		if !sat {
			continue
		}
		free := uint(d.NumVars - len(nt))
		cnt := new(big.Int).Lsh(big.NewInt(1), free)
		if bits%2 == 1 {
			total.Add(total, cnt)
		} else {
			total.Sub(total, cnt)
		}
	}
	return total, nil
}

// TermSatCount returns |sat(t)| over numVars variables: 2^(numVars − L)
// where L is the number of distinct variables fixed by the (satisfiable)
// normalized term, or 0 for an unsatisfiable term.
func TermSatCount(t Term, numVars int) *big.Int {
	nt, sat := t.Normalize()
	if !sat {
		return big.NewInt(0)
	}
	return new(big.Int).Lsh(big.NewInt(1), uint(numVars-len(nt)))
}

// ProbAssignment is a probability function on variables: p[v] is the
// probability that variable v is true, as an exact rational
// (Definition 5.1's nu).
type ProbAssignment []*big.Rat

// UniformProb returns the probability assignment giving every variable
// probability 1/2.
func UniformProb(numVars int) ProbAssignment {
	p := make(ProbAssignment, numVars)
	half := big.NewRat(1, 2)
	for i := range p {
		p[i] = half
	}
	return p
}

// Validate checks that the assignment covers numVars variables and every
// probability lies in [0, 1].
func (p ProbAssignment) Validate(numVars int) error {
	if len(p) < numVars {
		return fmt.Errorf("prop: probability assignment covers %d of %d variables", len(p), numVars)
	}
	zero, one := new(big.Rat), big.NewRat(1, 1)
	for v, pr := range p {
		if pr == nil {
			return fmt.Errorf("prop: variable %d has nil probability", v)
		}
		if pr.Cmp(zero) < 0 || pr.Cmp(one) > 0 {
			return fmt.Errorf("prop: variable %d has probability %v outside [0,1]", v, pr)
		}
	}
	return nil
}

// LitProb returns the probability of the literal under p.
func (p ProbAssignment) LitProb(l Lit) *big.Rat {
	if l.Neg {
		return new(big.Rat).Sub(big.NewRat(1, 1), p[l.Var])
	}
	return new(big.Rat).Set(p[l.Var])
}

// TermProb returns the probability that the (normalized) term holds:
// the product of its distinct literal probabilities; 0 for an
// unsatisfiable term.
func (p ProbAssignment) TermProb(t Term) *big.Rat {
	nt, sat := t.Normalize()
	if !sat {
		return new(big.Rat)
	}
	pr := big.NewRat(1, 1)
	for _, l := range nt {
		pr.Mul(pr, p.LitProb(l))
	}
	return pr
}

// ProbBruteForce computes Prob-DNF — the probability that the formula is
// true when each variable v is independently true with probability p[v]
// — by enumerating assignments. Fails with ErrBudget if NumVars >
// maxVars.
func (d DNF) ProbBruteForce(p ProbAssignment, maxVars int) (*big.Rat, error) {
	if err := p.Validate(d.NumVars); err != nil {
		return nil, err
	}
	if d.NumVars > maxVars || d.NumVars > 30 {
		return nil, fmt.Errorf("%w: %d variables (max %d)", ErrBudget, d.NumVars, maxVars)
	}
	total := new(big.Rat)
	a := make([]bool, d.NumVars)
	one := big.NewRat(1, 1)
	n := uint64(1) << uint(d.NumVars)
	for m := uint64(0); m < n; m++ {
		for i := range a {
			a[i] = m&(1<<uint(i)) != 0
		}
		if !d.Eval(a) {
			continue
		}
		w := new(big.Rat).Set(one)
		for i, v := range a {
			if v {
				w.Mul(w, p[i])
			} else {
				w.Mul(w, new(big.Rat).Sub(one, p[i]))
			}
		}
		total.Add(total, w)
	}
	return total, nil
}

// ProbInclusionExclusion computes Prob-DNF by inclusion–exclusion over
// terms, exact in the rationals. Exponential in the number of terms;
// fails with ErrBudget if len(Terms) > maxTerms.
func (d DNF) ProbInclusionExclusion(p ProbAssignment, maxTerms int) (*big.Rat, error) {
	if err := p.Validate(d.NumVars); err != nil {
		return nil, err
	}
	m := len(d.Terms)
	if m > maxTerms || m > 30 {
		return nil, fmt.Errorf("%w: %d terms (max %d)", ErrBudget, m, maxTerms)
	}
	total := new(big.Rat)
	for s := uint64(1); s < uint64(1)<<uint(m); s++ {
		var combined Term
		bits := 0
		for i := 0; i < m; i++ {
			if s&(1<<uint(i)) != 0 {
				combined = append(combined, d.Terms[i]...)
				bits++
			}
		}
		pr := p.TermProb(combined)
		if bits%2 == 1 {
			total.Add(total, pr)
		} else {
			total.Sub(total, pr)
		}
	}
	return total, nil
}

// UnionBound returns Σ_i Pr[T_i], the union upper bound on Prob-DNF;
// this quantity is the normalizer of the Karp–Luby estimator.
func (d DNF) UnionBound(p ProbAssignment) *big.Rat {
	total := new(big.Rat)
	for _, t := range d.Terms {
		total.Add(total, p.TermProb(t))
	}
	return total
}
