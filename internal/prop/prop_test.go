package prop

import (
	"math/big"
	"math/rand"
	"testing"
)

// randDNF builds a random DNF with the given shape, for cross-checking
// the exact algorithms against each other.
func randDNF(rng *rand.Rand, numVars, numTerms, width int) DNF {
	d := DNF{NumVars: numVars}
	for i := 0; i < numTerms; i++ {
		w := 1 + rng.Intn(width)
		t := make(Term, 0, w)
		for j := 0; j < w; j++ {
			t = append(t, Lit{Var: rng.Intn(numVars), Neg: rng.Intn(2) == 0})
		}
		d.Terms = append(d.Terms, t)
	}
	return d
}

func randProbs(rng *rand.Rand, numVars int) ProbAssignment {
	p := make(ProbAssignment, numVars)
	for i := range p {
		p[i] = big.NewRat(int64(rng.Intn(10)), 10)
	}
	return p
}

func TestLitBasics(t *testing.T) {
	l := Pos(3)
	if l.String() != "x3" || l.Negate().String() != "!x3" {
		t.Errorf("literal rendering wrong: %v %v", l, l.Negate())
	}
	a := []bool{false, false, false, true}
	if !l.Eval(a) || l.Negate().Eval(a) {
		t.Error("literal evaluation wrong")
	}
	if Negd(0).Eval(a) != true {
		t.Error("negative literal on false var should hold")
	}
}

func TestTermNormalize(t *testing.T) {
	tm := Term{Pos(2), Pos(0), Pos(2), Negd(1)}
	nt, sat := tm.Normalize()
	if !sat {
		t.Fatal("satisfiable term reported unsat")
	}
	if len(nt) != 3 || nt[0] != Pos(0) || nt[1] != Negd(1) || nt[2] != Pos(2) {
		t.Errorf("Normalize = %v", nt)
	}
	if _, sat := (Term{Pos(0), Negd(0)}).Normalize(); sat {
		t.Error("contradictory term reported sat")
	}
	if len(tm.Vars()) != 3 {
		t.Errorf("Vars = %v", tm.Vars())
	}
}

func TestDNFEvalAndString(t *testing.T) {
	d := MustDNF(3, Term{Pos(0), Pos(1)}, Term{Negd(2)})
	cases := []struct {
		a    []bool
		want bool
	}{
		{[]bool{true, true, true}, true},
		{[]bool{false, false, true}, false},
		{[]bool{false, false, false}, true},
	}
	for _, c := range cases {
		if got := d.Eval(c.a); got != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.a, got, c.want)
		}
	}
	if got := d.String(); got != "(x0 & x1) | (!x2)" {
		t.Errorf("String = %q", got)
	}
	if (DNF{}).String() != "false" {
		t.Error("empty DNF should render false")
	}
	if (Term{}).String() != "true" {
		t.Error("empty term should render true")
	}
	if _, err := NewDNF(1, Term{Pos(3)}); err == nil {
		t.Error("out-of-range literal accepted")
	}
	if d.Width() != 2 {
		t.Errorf("Width = %d", d.Width())
	}
}

func TestDNFSimplify(t *testing.T) {
	d := MustDNF(3,
		Term{Pos(0)},
		Term{Pos(0), Pos(1)},  // subsumed by {x0}
		Term{Pos(2), Negd(2)}, // contradictory
		Term{Pos(1), Pos(1)},  // duplicate literal
		Term{Negd(1), Pos(0)}, // subsumed by {x0}
	)
	s := d.Simplify()
	if len(s.Terms) != 2 {
		t.Fatalf("Simplify kept %d terms: %v", len(s.Terms), s)
	}
	// Equivalence on all assignments.
	for m := 0; m < 8; m++ {
		a := []bool{m&1 != 0, m&2 != 0, m&4 != 0}
		if d.Eval(a) != s.Eval(a) {
			t.Errorf("Simplify changed semantics at %v", a)
		}
	}
}

func TestDNFSimplifyRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 100; iter++ {
		d := randDNF(rng, 6, 1+rng.Intn(8), 4)
		s := d.Simplify()
		for m := 0; m < 64; m++ {
			a := make([]bool, 6)
			for i := range a {
				a[i] = m&(1<<i) != 0
			}
			if d.Eval(a) != s.Eval(a) {
				t.Fatalf("iter %d: Simplify changed semantics of %v at %v", iter, d, a)
			}
		}
	}
}

func TestCountBruteForceSmall(t *testing.T) {
	// x0 | x1 over 2 vars has 3 models.
	d := MustDNF(2, Term{Pos(0)}, Term{Pos(1)})
	c, err := d.CountBruteForce(20)
	if err != nil {
		t.Fatal(err)
	}
	if c.Int64() != 3 {
		t.Errorf("count = %v, want 3", c)
	}
	// Tautology via empty term.
	d2 := MustDNF(3, Term{})
	c2, _ := d2.CountBruteForce(20)
	if c2.Int64() != 8 {
		t.Errorf("tautology count = %v, want 8", c2)
	}
	// Empty DNF is false.
	c3, _ := (DNF{NumVars: 3}).CountBruteForce(20)
	if c3.Int64() != 0 {
		t.Errorf("false count = %v, want 0", c3)
	}
	if _, err := (DNF{NumVars: 40}).CountBruteForce(20); err == nil {
		t.Error("budget not enforced")
	}
}

func TestCountInclusionExclusionMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 60; iter++ {
		d := randDNF(rng, 3+rng.Intn(8), 1+rng.Intn(6), 3)
		bf, err := d.CountBruteForce(12)
		if err != nil {
			t.Fatal(err)
		}
		ie, err := d.CountInclusionExclusion(12)
		if err != nil {
			t.Fatal(err)
		}
		if bf.Cmp(ie) != 0 {
			t.Fatalf("iter %d: brute force %v != inclusion-exclusion %v for %v", iter, bf, ie, d)
		}
	}
}

func TestTermSatCount(t *testing.T) {
	if TermSatCount(Term{Pos(0), Negd(1)}, 4).Int64() != 4 {
		t.Error("TermSatCount of 2-lit term over 4 vars should be 4")
	}
	if TermSatCount(Term{Pos(0), Negd(0)}, 4).Int64() != 0 {
		t.Error("contradictory term should have 0 models")
	}
	if TermSatCount(Term{Pos(0), Pos(0)}, 4).Int64() != 8 {
		t.Error("duplicate literal should fix one variable only")
	}
}

func TestProbBruteForceBasics(t *testing.T) {
	d := MustDNF(2, Term{Pos(0), Pos(1)})
	p := ProbAssignment{big.NewRat(1, 2), big.NewRat(1, 3)}
	pr, err := d.ProbBruteForce(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Cmp(big.NewRat(1, 6)) != 0 {
		t.Errorf("prob = %v, want 1/6", pr)
	}
	// Validation.
	if _, err := d.ProbBruteForce(ProbAssignment{big.NewRat(1, 2)}, 10); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := d.ProbBruteForce(ProbAssignment{big.NewRat(3, 2), big.NewRat(1, 2)}, 10); err == nil {
		t.Error("out-of-range probability accepted")
	}
}

func TestProbInclusionExclusionMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 60; iter++ {
		nv := 3 + rng.Intn(6)
		d := randDNF(rng, nv, 1+rng.Intn(6), 3)
		p := randProbs(rng, nv)
		bf, err := d.ProbBruteForce(p, 12)
		if err != nil {
			t.Fatal(err)
		}
		ie, err := d.ProbInclusionExclusion(p, 12)
		if err != nil {
			t.Fatal(err)
		}
		if bf.Cmp(ie) != 0 {
			t.Fatalf("iter %d: brute force %v != IE %v for %v", iter, bf, ie, d)
		}
	}
}

func TestUniformProbMatchesCounting(t *testing.T) {
	// Under uniform 1/2 probabilities, Prob-DNF = #DNF / 2^n.
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 40; iter++ {
		nv := 3 + rng.Intn(6)
		d := randDNF(rng, nv, 1+rng.Intn(5), 3)
		cnt, _ := d.CountBruteForce(12)
		pr, _ := d.ProbBruteForce(UniformProb(nv), 12)
		want := new(big.Rat).SetFrac(cnt, new(big.Int).Lsh(big.NewInt(1), uint(nv)))
		if pr.Cmp(want) != 0 {
			t.Fatalf("iter %d: prob %v != count ratio %v", iter, pr, want)
		}
	}
}

func TestUnionBound(t *testing.T) {
	d := MustDNF(2, Term{Pos(0)}, Term{Pos(1)})
	p := ProbAssignment{big.NewRat(1, 2), big.NewRat(1, 2)}
	ub := d.UnionBound(p)
	if ub.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("UnionBound = %v, want 1", ub)
	}
	exact, _ := d.ProbBruteForce(p, 10)
	if ub.Cmp(exact) < 0 {
		t.Error("union bound below exact probability")
	}
}

func TestDNFOrAndTerm(t *testing.T) {
	d := MustDNF(2, Term{Pos(0)})
	e := MustDNF(3, Term{Pos(2)})
	u := d.Or(e)
	if u.NumVars != 3 || len(u.Terms) != 2 {
		t.Errorf("Or = %v", u)
	}
	w := d.AndTerm(Term{Negd(1)})
	if len(w.Terms) != 1 || len(w.Terms[0]) != 2 {
		t.Errorf("AndTerm = %v", w)
	}
	// Conjoining a contradictory extra literal drops the term.
	w2 := d.AndTerm(Term{Negd(0)})
	if len(w2.Terms) != 0 {
		t.Errorf("contradictory AndTerm kept terms: %v", w2)
	}
}
