package prop

import (
	"fmt"
	"math/big"
)

// This file implements the binary-comparison DNF constructions from the
// proof of Theorem 5.3: for a block of fresh variables Ȳ read as a
// binary number val(Ȳ), build DNF formulas for "val(Ȳ) < b" and
// "val(Ȳ) ≥ b". Both have O(ℓ) terms of O(ℓ) literals (O(ℓ²) total
// length, as stated in the paper).

// BitBlock identifies a block of variables encoding a binary number.
// Vars[0] is the most significant bit, matching the paper's
// Ȳ = Y_{ℓ-1}, ..., Y_0 reading.
type BitBlock struct {
	Vars []int
}

// NewBitBlock returns a block of ell variables starting at firstVar,
// most significant first.
func NewBitBlock(firstVar, ell int) BitBlock {
	vars := make([]int, ell)
	for i := range vars {
		vars[i] = firstVar + i
	}
	return BitBlock{Vars: vars}
}

// Len returns the number of bits in the block.
func (b BitBlock) Len() int { return len(b.Vars) }

// Val returns val(Ȳ) under the assignment.
func (b BitBlock) Val(a []bool) *big.Int {
	v := new(big.Int)
	for _, x := range b.Vars {
		v.Lsh(v, 1)
		if a[x] {
			v.Or(v, big.NewInt(1))
		}
	}
	return v
}

// bit returns bit i (0 = least significant) of n.
func bit(n *big.Int, i int) bool { return n.Bit(i) == 1 }

// varAt returns the variable holding bit i (0 = least significant).
func (b BitBlock) varAt(i int) int { return b.Vars[len(b.Vars)-1-i] }

// LessTerms returns the terms of a DNF expressing "val(Ȳ) < bound",
// following the paper's construction: one disjunct per bit position i
// with bound_i = 1, asserting ¬Y_i together with ¬Y_j for every higher
// position j where bound_j = 0.
func (b BitBlock) LessTerms(bound *big.Int) ([]Term, error) {
	ell := len(b.Vars)
	if bound.Sign() < 0 {
		return nil, fmt.Errorf("prop: negative bound %v", bound)
	}
	if bound.BitLen() > ell {
		// Every value fits below the bound: the tautological empty term.
		return []Term{{}}, nil
	}
	var terms []Term
	for i := 0; i < ell; i++ {
		if !bit(bound, i) {
			continue
		}
		t := Term{Negd(b.varAt(i))}
		for j := i + 1; j < ell; j++ {
			if !bit(bound, j) {
				t = append(t, Negd(b.varAt(j)))
			}
		}
		terms = append(terms, t)
	}
	return terms, nil
}

// GreaterEqTerms returns the terms of a DNF expressing "val(Ȳ) ≥ bound":
// one disjunct per bit position i with bound_i = 0, asserting Y_i
// together with Y_j for every higher position j where bound_j = 1, plus
// the disjunct asserting Y_j for every position with bound_j = 1
// (equality-or-above on the prefix).
func (b BitBlock) GreaterEqTerms(bound *big.Int) ([]Term, error) {
	ell := len(b.Vars)
	if bound.Sign() < 0 {
		return nil, fmt.Errorf("prop: negative bound %v", bound)
	}
	if bound.BitLen() > ell {
		// No ell-bit value reaches the bound: empty DNF (false).
		return nil, nil
	}
	var terms []Term
	for i := 0; i < ell; i++ {
		if bit(bound, i) {
			continue
		}
		t := Term{Pos(b.varAt(i))}
		for j := i + 1; j < ell; j++ {
			if bit(bound, j) {
				t = append(t, Pos(b.varAt(j)))
			}
		}
		terms = append(terms, t)
	}
	// The "Ȳ matches bound on all its one-bits" disjunct covers val = bound
	// (and values exceeding it only on zero-bit positions).
	eq := Term{}
	for i := 0; i < ell; i++ {
		if bit(bound, i) {
			eq = append(eq, Pos(b.varAt(i)))
		}
	}
	terms = append(terms, eq)
	return terms, nil
}
