package prop

import (
	"errors"
	"math/rand"
	"testing"
)

// randFormula builds a random formula tree over numVars variables.
func randFormula(rng *rand.Rand, numVars, depth int) Formula {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(6) {
		case 0:
			return FTrue{}
		case 1:
			return FFalse{}
		default:
			return FVar(rng.Intn(numVars))
		}
	}
	switch rng.Intn(3) {
	case 0:
		return FNot{randFormula(rng, numVars, depth-1)}
	case 1:
		n := 1 + rng.Intn(3)
		fs := make(FAnd, n)
		for i := range fs {
			fs[i] = randFormula(rng, numVars, depth-1)
		}
		return fs
	default:
		n := 1 + rng.Intn(3)
		fs := make(FOr, n)
		for i := range fs {
			fs[i] = randFormula(rng, numVars, depth-1)
		}
		return fs
	}
}

func TestFormulaEval(t *testing.T) {
	// (x0 & !x1) | !(x2 | x0)
	f := FOr{
		FAnd{FVar(0), FNot{FVar(1)}},
		FNot{FOr{FVar(2), FVar(0)}},
	}
	cases := []struct {
		a    []bool
		want bool
	}{
		{[]bool{true, false, true}, true},
		{[]bool{false, false, false}, true},
		{[]bool{false, true, true}, false},
		{[]bool{true, true, false}, false},
	}
	for _, c := range cases {
		if got := f.Eval(c.a); got != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.a, got, c.want)
		}
	}
	if MaxVar(f) != 2 {
		t.Errorf("MaxVar = %d", MaxVar(f))
	}
	if MaxVar(FTrue{}) != -1 {
		t.Error("MaxVar of constant should be -1")
	}
}

func TestToDNFEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const numVars = 5
	for iter := 0; iter < 200; iter++ {
		f := randFormula(rng, numVars, 3)
		d, err := ToDNF(f, numVars, 10000)
		if err != nil {
			t.Fatalf("iter %d: ToDNF(%v): %v", iter, f, err)
		}
		for m := 0; m < 1<<numVars; m++ {
			a := make([]bool, numVars)
			for i := range a {
				a[i] = m&(1<<i) != 0
			}
			if f.Eval(a) != d.Eval(a) {
				t.Fatalf("iter %d: formula %v and DNF %v disagree at %v", iter, f, d, a)
			}
		}
	}
}

func TestToDNFBudget(t *testing.T) {
	// A conjunction of n binary disjunctions distributes to 2^n terms.
	var f FAnd
	for i := 0; i < 20; i += 2 {
		f = append(f, FOr{FVar(i), FVar(i + 1)})
	}
	_, err := ToDNF(f, 20, 100)
	if !errors.Is(err, ErrBudget) {
		t.Errorf("want ErrBudget, got %v", err)
	}
	if _, err := ToDNF(f, 20, 1<<20); err != nil {
		t.Errorf("large budget should succeed: %v", err)
	}
}

func TestToDNFConstants(t *testing.T) {
	d, err := ToDNF(FTrue{}, 2, 10)
	if err != nil || len(d.Terms) != 1 || len(d.Terms[0]) != 0 {
		t.Errorf("ToDNF(true) = %v, %v", d, err)
	}
	d, err = ToDNF(FFalse{}, 2, 10)
	if err != nil || len(d.Terms) != 0 {
		t.Errorf("ToDNF(false) = %v, %v", d, err)
	}
	d, err = ToDNF(FNot{FFalse{}}, 2, 10)
	if err != nil || !d.Eval([]bool{false, false}) {
		t.Errorf("ToDNF(!false) wrong: %v, %v", d, err)
	}
	if _, err := ToDNF(FVar(5), 2, 10); err == nil {
		t.Error("variable outside declared range accepted")
	}
}

func TestFormulaString(t *testing.T) {
	f := FOr{FAnd{FVar(0)}, FNot{FVar(1)}}
	if got := f.String(); got != "((x0)) | (!x1)" {
		t.Errorf("String = %q", got)
	}
	if (FAnd{}).String() != "true" || (FOr{}).String() != "false" {
		t.Error("empty connective rendering wrong")
	}
}

func TestFold(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	const numVars = 6
	for iter := 0; iter < 150; iter++ {
		f := randFormula(rng, numVars, 3)
		fixed := map[int]bool{}
		for v := 0; v < numVars; v++ {
			if rng.Intn(2) == 0 {
				fixed[v] = rng.Intn(2) == 0
			}
		}
		folded := Fold(f, fixed)
		// Folded formula must not mention fixed variables.
		if fv, ok := folded.(FVar); ok {
			if _, bad := fixed[int(fv)]; bad {
				t.Fatalf("iter %d: fixed variable survived fold", iter)
			}
		}
		for m := 0; m < 1<<numVars; m++ {
			a := make([]bool, numVars)
			for i := range a {
				a[i] = m&(1<<i) != 0
			}
			consistent := true
			for v, val := range fixed {
				if a[v] != val {
					consistent = false
					break
				}
			}
			if !consistent {
				continue
			}
			if f.Eval(a) != folded.Eval(a) {
				t.Fatalf("iter %d: Fold changed semantics of %v under %v at %v", iter, f, fixed, a)
			}
		}
	}
	// Constant folding specifics.
	if _, ok := Fold(FNot{FFalse{}}, nil).(FTrue); !ok {
		t.Error("!false did not fold to true")
	}
	if _, ok := Fold(FAnd{FTrue{}, FTrue{}}, nil).(FTrue); !ok {
		t.Error("true & true did not fold")
	}
	if _, ok := Fold(FOr{}, nil).(FFalse); !ok {
		t.Error("empty Or did not fold to false")
	}
}
