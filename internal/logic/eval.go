package logic

import (
	"fmt"

	"qrel/internal/rel"
)

// Env assigns universe elements to first-order variables.
type Env map[string]int

// Clone returns a copy of the environment.
func (e Env) Clone() Env {
	c := make(Env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// MaxSOTuples bounds the tuple-space size n^arity over which a
// second-order quantifier enumerates relations (2^(n^arity) relations).
// Evaluation of second-order queries is necessarily exponential — they
// capture the polynomial-time hierarchy — so this is a hard safety
// budget, not a tunable.
const MaxSOTuples = 22

// Evaluator evaluates formulas on a structure. The zero value is not
// usable; construct with NewEvaluator.
type Evaluator struct {
	s *rel.Structure
	// extra holds relations bound by second-order quantifiers, which
	// shadow the structure's relations of the same name.
	extra map[string]*rel.Relation
}

// NewEvaluator returns an evaluator for the structure.
func NewEvaluator(s *rel.Structure) *Evaluator {
	// extra is allocated lazily by the first second-order quantifier:
	// first-order evaluation — the Monte Carlo per-sample hot path —
	// never pays for it (nil-map reads are fine).
	return &Evaluator{s: s}
}

// Eval evaluates f on s under env. It is a convenience wrapper around
// NewEvaluator(s).Eval.
func Eval(s *rel.Structure, f Formula, env Env) (bool, error) {
	return NewEvaluator(s).Eval(f, env)
}

// EvalSentence evaluates a sentence (no free variables, empty env).
func EvalSentence(s *rel.Structure, f Formula) (bool, error) {
	return Eval(s, f, Env{})
}

// term resolves a term to a universe element.
func (ev *Evaluator) term(t Term, env Env) (int, error) {
	switch u := t.(type) {
	case Var:
		e, ok := env[string(u)]
		if !ok {
			return 0, fmt.Errorf("logic: unbound variable %q", u)
		}
		return e, nil
	case Const:
		e, ok := ev.s.Consts[string(u)]
		if !ok {
			return 0, fmt.Errorf("logic: unknown constant %q", u)
		}
		return e, nil
	case Elem:
		e := int(u)
		if e < 0 || e >= ev.s.N {
			return 0, fmt.Errorf("logic: element %d outside universe [0,%d)", e, ev.s.N)
		}
		return e, nil
	default:
		return 0, fmt.Errorf("logic: unknown term %T", t)
	}
}

// Eval evaluates f under env.
func (ev *Evaluator) Eval(f Formula, env Env) (bool, error) {
	switch g := f.(type) {
	case Bool:
		return bool(g), nil
	case Atom:
		// Atom arity is bounded by MaxArity for every relation that can
		// contain the tuple, so a fixed stack buffer serves the common
		// case without a per-atom heap allocation (the Monte Carlo
		// per-sample hot path evaluates thousands of atoms per world).
		var tupBuf [rel.MaxArity]int
		var tup rel.Tuple
		if len(g.Args) <= rel.MaxArity {
			tup = tupBuf[:len(g.Args)]
		} else {
			tup = make(rel.Tuple, len(g.Args))
		}
		for i, t := range g.Args {
			e, err := ev.term(t, env)
			if err != nil {
				return false, err
			}
			tup[i] = e
		}
		if r, ok := ev.extra[g.Rel]; ok {
			if r.Arity != len(tup) {
				return false, fmt.Errorf("logic: relation variable %s used with arity %d, bound with %d", g.Rel, len(tup), r.Arity)
			}
			return r.Contains(tup), nil
		}
		r := ev.s.Rel(g.Rel)
		if r == nil {
			return false, fmt.Errorf("logic: unknown relation %q", g.Rel)
		}
		if r.Arity != len(tup) {
			return false, fmt.Errorf("logic: relation %s has arity %d, used with %d args", g.Rel, r.Arity, len(tup))
		}
		return r.Contains(tup), nil
	case Eq:
		l, err := ev.term(g.L, env)
		if err != nil {
			return false, err
		}
		r, err := ev.term(g.R, env)
		if err != nil {
			return false, err
		}
		return l == r, nil
	case Not:
		v, err := ev.Eval(g.F, env)
		return !v, err
	case And:
		for _, h := range g {
			v, err := ev.Eval(h, env)
			if err != nil || !v {
				return false, err
			}
		}
		return true, nil
	case Or:
		for _, h := range g {
			v, err := ev.Eval(h, env)
			if err != nil || v {
				return v, err
			}
		}
		return false, nil
	case Implies:
		l, err := ev.Eval(g.L, env)
		if err != nil {
			return false, err
		}
		if !l {
			return true, nil
		}
		return ev.Eval(g.R, env)
	case Iff:
		l, err := ev.Eval(g.L, env)
		if err != nil {
			return false, err
		}
		r, err := ev.Eval(g.R, env)
		if err != nil {
			return false, err
		}
		return l == r, nil
	case Exists:
		return ev.evalFOQuant(g.Vars, g.Body, env, true)
	case Forall:
		return ev.evalFOQuant(g.Vars, g.Body, env, false)
	case SOQuant:
		return ev.evalSOQuant(g, env)
	default:
		return false, fmt.Errorf("logic: unknown formula node %T", f)
	}
}

// quantSaveMax is the widest quantifier block whose shadowed bindings
// are saved in fixed stack arrays; wider blocks fall back to cloning
// the environment.
const quantSaveMax = 8

// evalFOQuant evaluates a block of like quantifiers by enumerating
// A^len(vars).
func (ev *Evaluator) evalFOQuant(vars []string, body Formula, env Env, existential bool) (bool, error) {
	if len(vars) == 0 {
		return ev.Eval(body, env)
	}
	// Bind in place and restore the shadowed values on return instead of
	// cloning the environment: the per-block map copy dominated the
	// Monte Carlo per-sample allocation profile.
	var savedVal [quantSaveMax]int
	var savedOK [quantSaveMax]bool
	switch {
	case len(env) == 0:
		// An empty environment — a sentence query, the per-world shape of
		// the Monte Carlo engines — shadows nothing, so restoring is plain
		// deletion and the per-variable save lookups are skipped entirely.
		defer func() {
			for _, v := range vars {
				delete(env, v)
			}
		}()
	case len(vars) <= quantSaveMax:
		for i, v := range vars {
			savedVal[i], savedOK[i] = env[v]
		}
		defer func() {
			for i, v := range vars {
				if savedOK[i] {
					env[v] = savedVal[i]
				} else {
					delete(env, v)
				}
			}
		}()
	default:
		env = env.Clone()
	}
	// Single-variable blocks — the common shape — walk the universe
	// directly, skipping ForEachTuple's per-call tuple allocation.
	if len(vars) == 1 {
		v := vars[0]
		for e := 0; e < ev.s.N; e++ {
			env[v] = e
			val, err := ev.Eval(body, env)
			if err != nil {
				return false, err
			}
			if val == existential {
				return existential, nil
			}
		}
		return !existential, nil
	}
	result := !existential
	var innerErr error
	rel.ForEachTuple(ev.s.N, len(vars), func(t rel.Tuple) bool {
		for i, v := range vars {
			env[v] = t[i]
		}
		val, err := ev.Eval(body, env)
		if err != nil {
			innerErr = err
			return false
		}
		if val == existential {
			result = existential
			return false
		}
		return true
	})
	if innerErr != nil {
		return false, innerErr
	}
	return result, nil
}

// evalSOQuant evaluates a second-order quantifier by enumerating all
// 2^(n^arity) relations of the given arity. Guarded by MaxSOTuples.
func (ev *Evaluator) evalSOQuant(q SOQuant, env Env) (bool, error) {
	if q.Arity < 0 || q.Arity > rel.MaxArity {
		return false, fmt.Errorf("logic: second-order arity %d out of range", q.Arity)
	}
	space := rel.TupleCount(ev.s.N, q.Arity)
	if space < 0 || space > MaxSOTuples {
		return false, fmt.Errorf("logic: second-order quantifier over %s/%d: tuple space %d exceeds budget %d",
			q.Rel, q.Arity, space, MaxSOTuples)
	}
	if _, shadow := ev.extra[q.Rel]; shadow {
		return false, fmt.Errorf("logic: nested second-order quantifiers reuse relation variable %q", q.Rel)
	}
	tuples := make([]rel.Tuple, 0, space)
	rel.ForEachTuple(ev.s.N, q.Arity, func(t rel.Tuple) bool {
		tuples = append(tuples, t.Clone())
		return true
	})
	if ev.extra == nil {
		ev.extra = map[string]*rel.Relation{}
	}
	defer delete(ev.extra, q.Rel)
	for mask := uint64(0); mask < uint64(1)<<uint(space); mask++ {
		r := rel.NewRelation(q.Arity)
		for i, t := range tuples {
			if mask&(1<<uint(i)) != 0 {
				r.Add(t)
			}
		}
		ev.extra[q.Rel] = r
		val, err := ev.Eval(q.Body, env)
		if err != nil {
			return false, err
		}
		if val == q.Exists {
			return q.Exists, nil
		}
	}
	return !q.Exists, nil
}

// Answer computes the query answer ψ^A = {ā ∈ A^k : A ⊨ ψ(ā)} for the
// free variables in FreeVars order. For a sentence it returns either one
// empty tuple (true) or none (false).
func Answer(s *rel.Structure, f Formula) ([]rel.Tuple, error) {
	vars := FreeVars(f)
	ev := NewEvaluator(s)
	var out []rel.Tuple
	env := Env{}
	var innerErr error
	rel.ForEachTuple(s.N, len(vars), func(t rel.Tuple) bool {
		for i, v := range vars {
			env[v] = t[i]
		}
		val, err := ev.Eval(f, env)
		if err != nil {
			innerErr = err
			return false
		}
		if val {
			out = append(out, t.Clone())
		}
		return true
	})
	if innerErr != nil {
		return nil, innerErr
	}
	return out, nil
}
