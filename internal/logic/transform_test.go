package logic

import (
	"math/rand"
	"testing"
)

func TestSubstituteBasic(t *testing.T) {
	f := MustParse("E(x,y) & S(x)", nil)
	g := Substitute(f, map[string]Term{"x": Elem(3)})
	if g.String() != "E(#3,y) & S(#3)" {
		t.Errorf("Substitute = %q", g.String())
	}
	// Bound occurrences are shadowed.
	f2 := MustParse("S(x) & exists x . S(x)", nil)
	g2 := Substitute(f2, map[string]Term{"x": Elem(0)})
	want := "S(#0) & (exists x . S(x))"
	if g2.String() != want {
		t.Errorf("Substitute = %q, want %q", g2.String(), want)
	}
}

func TestSubstituteCaptureAvoidance(t *testing.T) {
	// Substituting x ↦ y into ∃y.E(x,y) must rename the bound y.
	f := MustParse("exists y . E(x,y)", nil)
	g := Substitute(f, map[string]Term{"x": Var("y")})
	ex, ok := g.(Exists)
	if !ok {
		t.Fatalf("node %T", g)
	}
	if ex.Vars[0] == "y" {
		t.Fatalf("capture: %v", g)
	}
	// Semantically: on the path graph, ∃y.E(x,y) with x := y means
	// "y has a successor" — evaluate both readings to confirm the rename
	// preserved meaning.
	s := pathGraph(3)
	for e := 0; e < 3; e++ {
		got, err := Eval(s, g, Env{"y": e})
		if err != nil {
			t.Fatal(err)
		}
		want := e < 2 // 0 and 1 have successors
		if got != want {
			t.Errorf("elem %d: %v, want %v", e, got, want)
		}
	}
}

func TestSubstitutePreservesEvalOnFreshTerm(t *testing.T) {
	// Property: substituting x ↦ #e and evaluating equals evaluating with
	// env x = e.
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 80; iter++ {
		s := randStructure(rng, 2+rng.Intn(3))
		// Random formula with one free variable x: bind a random sentence
		// shape by injecting x at the leaves via scope trick.
		f := randSentence(rng, 3, []string{"x"})
		e := rng.Intn(s.N)
		want, err := Eval(s, f, Env{"x": e})
		if err != nil {
			t.Fatal(err)
		}
		g := Substitute(f, map[string]Term{"x": Elem(e)})
		if len(FreeVars(g)) != 0 {
			t.Fatalf("iter %d: substitution left free vars %v in %q", iter, FreeVars(g), g)
		}
		got, err := EvalSentence(s, g)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iter %d: substitution changed truth of %q", iter, f.String())
		}
	}
}

func TestPrenexShape(t *testing.T) {
	f := MustParse("(exists x . S(x)) & (forall y . E(y,y) | exists z . S(z))", nil)
	p, err := Prenex(f)
	if err != nil {
		t.Fatal(err)
	}
	// Matrix below the quantifier prefix must be quantifier-free.
	body := p
	depth := 0
	for {
		switch g := body.(type) {
		case Exists:
			body = g.Body
			depth++
			continue
		case Forall:
			body = g.Body
			depth++
			continue
		}
		break
	}
	if depth != 3 {
		t.Errorf("prefix has %d quantifiers, want 3 (%q)", depth, p)
	}
	if !IsQuantifierFree(body) {
		t.Errorf("matrix not quantifier-free: %q", body)
	}
}

func TestPrenexPreservesEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 120; iter++ {
		s := randStructure(rng, 2+rng.Intn(3))
		f := randSentence(rng, 3, nil)
		p, err := Prenex(f)
		if err != nil {
			t.Fatal(err)
		}
		v1, err := EvalSentence(s, f)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := EvalSentence(s, p)
		if err != nil {
			t.Fatalf("iter %d: eval prenex %q: %v", iter, p, err)
		}
		if v1 != v2 {
			t.Fatalf("iter %d: Prenex changed truth of %q (prenex %q)", iter, f.String(), p.String())
		}
	}
}

func TestPrenexPreservesFreeVariables(t *testing.T) {
	f := MustParse("S(w) & exists y . E(w,y)", nil)
	p, err := Prenex(f)
	if err != nil {
		t.Fatal(err)
	}
	fv := FreeVars(p)
	if len(fv) != 1 || fv[0] != "w" {
		t.Errorf("FreeVars(prenex) = %v", fv)
	}
}

func TestPrenexRejectsSecondOrder(t *testing.T) {
	f := MustParse("existsrel C/1 . exists x . C(x)", nil)
	if _, err := Prenex(f); err == nil {
		t.Error("second-order accepted")
	}
}

func TestPrenexStandardizesApart(t *testing.T) {
	// The same bound name in sibling scopes must not collide after
	// pulling.
	f := MustParse("(exists x . S(x)) & (exists x . E(x,x))", nil)
	p, err := Prenex(f)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	body := p
	for {
		switch g := body.(type) {
		case Exists:
			for _, v := range g.Vars {
				names[v]++
			}
			body = g.Body
			continue
		case Forall:
			for _, v := range g.Vars {
				names[v]++
			}
			body = g.Body
			continue
		}
		break
	}
	if len(names) != 2 {
		t.Fatalf("prefix names %v, want 2 distinct", names)
	}
	for n, c := range names {
		if c != 1 {
			t.Errorf("bound name %q used %d times", n, c)
		}
	}
	// And evaluation is preserved.
	s := pathGraph(3)
	v1, _ := EvalSentence(s, f)
	v2, _ := EvalSentence(s, p)
	if v1 != v2 {
		t.Error("standardizing changed truth")
	}
}
