package logic

import (
	"testing"
)

// FuzzParse checks that the query parser never panics, and that
// whatever parses prints and reparses stably (print/parse idempotence).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"exists x y z . L(x,y) & R(x,z) & S(y) & S(z)",
		"forall x . S(x) -> exists y . E(x,y)",
		"existsrel C/1 . forall x y . E(x,y) -> ((C(x) & !C(y)) | (!C(x) & C(y)))",
		"x = y | E(x,y)",
		"!((S(0)) <-> (S(1)))",
		"exists x . S(x",
		"E(0,1) -",
		"#",
		"exists . foo",
		"forall forall . S(x)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src, nil)
		if err != nil {
			return
		}
		printed := q.String()
		q2, err := Parse(printed, nil)
		if err != nil {
			t.Fatalf("printed form %q of %q does not reparse: %v", printed, src, err)
		}
		if q2.String() != printed {
			t.Fatalf("print/parse unstable: %q -> %q", printed, q2.String())
		}
	})
}
