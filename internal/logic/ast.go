// Package logic implements the query languages of the paper: first-order
// logic over relational vocabularies (with its quantifier-free,
// conjunctive, existential and universal fragments) and relational
// second-order quantification. It provides an AST, a parser, a printer,
// an evaluator over rel.Structure, fragment classification, and the
// grounding (lineage) transformation of Theorem 5.4 that maps a query on
// a concrete database to a propositional formula over ground atoms.
package logic

import (
	"fmt"
	"strings"
)

// Term is a first-order term: a variable, a named constant, or a direct
// universe element.
type Term interface {
	fmt.Stringer
	isTerm()
}

// Var is a first-order variable.
type Var string

// Const is a named constant, interpreted by the structure.
type Const string

// Elem is a direct universe element (useful for per-tuple instantiation
// ψ(ā) without renaming).
type Elem int

func (Var) isTerm()   {}
func (Const) isTerm() {}
func (Elem) isTerm()  {}

func (v Var) String() string   { return string(v) }
func (c Const) String() string { return string(c) }
func (e Elem) String() string  { return fmt.Sprintf("#%d", int(e)) }

// Formula is a first- or second-order formula.
type Formula interface {
	fmt.Stringer
	isFormula()
}

// Bool is a propositional constant.
type Bool bool

// Atom is a relational atom R(t1, ..., tk).
type Atom struct {
	Rel  string
	Args []Term
}

// Eq is an equality atom t1 = t2.
type Eq struct {
	L, R Term
}

// Not is negation.
type Not struct {
	F Formula
}

// And is an n-ary conjunction; empty means true.
type And []Formula

// Or is an n-ary disjunction; empty means false.
type Or []Formula

// Implies is material implication.
type Implies struct {
	L, R Formula
}

// Iff is logical equivalence.
type Iff struct {
	L, R Formula
}

// Exists is a block of first-order existential quantifiers.
type Exists struct {
	Vars []string
	Body Formula
}

// Forall is a block of first-order universal quantifiers.
type Forall struct {
	Vars []string
	Body Formula
}

// SOQuant is a second-order quantifier over a relation variable of the
// given arity.
type SOQuant struct {
	Exists bool
	Rel    string
	Arity  int
	Body   Formula
}

func (Bool) isFormula()    {}
func (Atom) isFormula()    {}
func (Eq) isFormula()      {}
func (Not) isFormula()     {}
func (And) isFormula()     {}
func (Or) isFormula()      {}
func (Implies) isFormula() {}
func (Iff) isFormula()     {}
func (Exists) isFormula()  {}
func (Forall) isFormula()  {}
func (SOQuant) isFormula() {}

// String renders the formula in the concrete syntax accepted by Parse.
func (b Bool) String() string {
	if b {
		return "true"
	}
	return "false"
}

// String renders the atom as "R(x,y)".
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Rel + "(" + strings.Join(parts, ",") + ")"
}

func (e Eq) String() string  { return e.L.String() + " = " + e.R.String() }
func (n Not) String() string { return "!" + paren(n.F) }

func (c And) String() string {
	if len(c) == 0 {
		return "true"
	}
	parts := make([]string, len(c))
	for i, f := range c {
		parts[i] = paren(f)
	}
	return strings.Join(parts, " & ")
}

func (d Or) String() string {
	if len(d) == 0 {
		return "false"
	}
	parts := make([]string, len(d))
	for i, f := range d {
		parts[i] = paren(f)
	}
	return strings.Join(parts, " | ")
}

func (i Implies) String() string { return paren(i.L) + " -> " + paren(i.R) }
func (i Iff) String() string     { return paren(i.L) + " <-> " + paren(i.R) }

func (e Exists) String() string {
	return "exists " + strings.Join(e.Vars, " ") + " . " + e.Body.String()
}

func (f Forall) String() string {
	return "forall " + strings.Join(f.Vars, " ") + " . " + f.Body.String()
}

func (q SOQuant) String() string {
	kw := "existsrel"
	if !q.Exists {
		kw = "forallrel"
	}
	return fmt.Sprintf("%s %s/%d . %s", kw, q.Rel, q.Arity, q.Body.String())
}

// paren wraps non-leaf subformulas in parentheses for unambiguous
// rendering.
func paren(f Formula) string {
	switch f.(type) {
	case Bool, Atom, Eq, Not:
		return f.String()
	default:
		return "(" + f.String() + ")"
	}
}

// Walk calls fn on f and all its subformulas in preorder; if fn returns
// false the subtree below that node is skipped.
func Walk(f Formula, fn func(Formula) bool) {
	if !fn(f) {
		return
	}
	switch g := f.(type) {
	case Not:
		Walk(g.F, fn)
	case And:
		for _, h := range g {
			Walk(h, fn)
		}
	case Or:
		for _, h := range g {
			Walk(h, fn)
		}
	case Implies:
		Walk(g.L, fn)
		Walk(g.R, fn)
	case Iff:
		Walk(g.L, fn)
		Walk(g.R, fn)
	case Exists:
		Walk(g.Body, fn)
	case Forall:
		Walk(g.Body, fn)
	case SOQuant:
		Walk(g.Body, fn)
	}
}

// FreeVars returns the free first-order variables of f in first-seen
// order.
func FreeVars(f Formula) []string {
	var out []string
	seen := map[string]struct{}{}
	freeVars(f, map[string]int{}, func(v string) {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	})
	return out
}

func freeVars(f Formula, bound map[string]int, emit func(string)) {
	emitTerm := func(t Term) {
		if v, ok := t.(Var); ok {
			if bound[string(v)] == 0 {
				emit(string(v))
			}
		}
	}
	switch g := f.(type) {
	case Atom:
		for _, t := range g.Args {
			emitTerm(t)
		}
	case Eq:
		emitTerm(g.L)
		emitTerm(g.R)
	case Not:
		freeVars(g.F, bound, emit)
	case And:
		for _, h := range g {
			freeVars(h, bound, emit)
		}
	case Or:
		for _, h := range g {
			freeVars(h, bound, emit)
		}
	case Implies:
		freeVars(g.L, bound, emit)
		freeVars(g.R, bound, emit)
	case Iff:
		freeVars(g.L, bound, emit)
		freeVars(g.R, bound, emit)
	case Exists:
		for _, v := range g.Vars {
			bound[v]++
		}
		freeVars(g.Body, bound, emit)
		for _, v := range g.Vars {
			bound[v]--
		}
	case Forall:
		for _, v := range g.Vars {
			bound[v]++
		}
		freeVars(g.Body, bound, emit)
		for _, v := range g.Vars {
			bound[v]--
		}
	case SOQuant:
		freeVars(g.Body, bound, emit)
	}
}

// SORelNames returns the names of second-order relation variables bound
// anywhere in f.
func SORelNames(f Formula) []string {
	var out []string
	Walk(f, func(g Formula) bool {
		if q, ok := g.(SOQuant); ok {
			out = append(out, q.Rel)
		}
		return true
	})
	return out
}
