package logic

import "testing"

// BenchmarkEvalSentenceEmptyEnv is the per-world shape of the Monte
// Carlo interpreted hot path: a closed quantified sentence evaluated
// with an empty environment, once per sampled world. It pins the
// empty-env fast path in evalFOQuant — nothing is shadowed, so the
// quantifier block must not pay per-variable save lookups.
func BenchmarkEvalSentenceEmptyEnv(b *testing.B) {
	s := pathGraph(8)
	f := MustParse("forall x . exists y . E(x,y) | S(x)", s.Voc)
	env := Env{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(s, f, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalSentenceBoundEnv is the contrast case: the same shape
// under a pre-populated environment (an answer-tuple query), which must
// keep the save/restore semantics intact.
func BenchmarkEvalSentenceBoundEnv(b *testing.B) {
	s := pathGraph(8)
	f := MustParse("exists y . E(x,y) | S(x)", s.Voc)
	env := Env{"x": 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(s, f, env); err != nil {
			b.Fatal(err)
		}
	}
}
