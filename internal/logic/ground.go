package logic

import (
	"fmt"

	"qrel/internal/prop"
	"qrel/internal/rel"
)

// AtomIndex maps ground atoms to dense propositional variable indices.
// It is the shared namespace between a query's lineage (a prop formula)
// and the probability assignment derived from an unreliable database.
type AtomIndex struct {
	byKey map[rel.AtomKey]int
	atoms []rel.GroundAtom
}

// NewAtomIndex returns an empty index.
func NewAtomIndex() *AtomIndex {
	return &AtomIndex{byKey: map[rel.AtomKey]int{}}
}

// ID returns the propositional variable for the atom, allocating one on
// first sight.
func (ix *AtomIndex) ID(a rel.GroundAtom) int {
	k := a.Key()
	if id, ok := ix.byKey[k]; ok {
		return id
	}
	id := len(ix.atoms)
	ix.byKey[k] = id
	ix.atoms = append(ix.atoms, rel.GroundAtom{Rel: a.Rel, Args: a.Args.Clone()})
	return id
}

// Lookup returns the variable for the atom if it has been allocated.
func (ix *AtomIndex) Lookup(a rel.GroundAtom) (int, bool) {
	id, ok := ix.byKey[a.Key()]
	return id, ok
}

// Atom returns the ground atom for a variable index.
func (ix *AtomIndex) Atom(id int) rel.GroundAtom { return ix.atoms[id] }

// Len returns the number of allocated variables.
func (ix *AtomIndex) Len() int { return len(ix.atoms) }

// Atoms returns the allocated atoms in variable order. The slice is
// shared; callers must not mutate it.
func (ix *AtomIndex) Atoms() []rel.GroundAtom { return ix.atoms }

// MaxGroundTerms bounds the number of propositional nodes the grounding
// expansion may produce.
const MaxGroundTerms = 1 << 22

// Ground expands f over the structure's universe into a propositional
// formula whose variables are ground atoms (allocated in ix): first-order
// quantifiers become disjunctions/conjunctions over elements and
// equalities are replaced by their truth values — exactly the
// ψ ↦ ψ” construction in the proof of Theorem 5.4, generalized to
// arbitrary first-order formulas. env supplies values for free
// variables. Second-order quantifiers are rejected.
func Ground(s *rel.Structure, f Formula, env Env, ix *AtomIndex) (prop.Formula, error) {
	g := &grounder{s: s, ix: ix, budget: MaxGroundTerms}
	return g.ground(f, env)
}

type grounder struct {
	s      *rel.Structure
	ix     *AtomIndex
	budget int
}

func (g *grounder) spend() error {
	g.budget--
	if g.budget < 0 {
		return fmt.Errorf("%w: grounding exceeds %d nodes", prop.ErrBudget, MaxGroundTerms)
	}
	return nil
}

func (g *grounder) ground(f Formula, env Env) (prop.Formula, error) {
	if err := g.spend(); err != nil {
		return nil, err
	}
	switch h := f.(type) {
	case Bool:
		if h {
			return prop.FTrue{}, nil
		}
		return prop.FFalse{}, nil
	case Atom:
		tup := make(rel.Tuple, len(h.Args))
		for i, t := range h.Args {
			e, err := resolveTerm(g.s, t, env)
			if err != nil {
				return nil, err
			}
			tup[i] = e
		}
		r := g.s.Rel(h.Rel)
		if r == nil {
			return nil, fmt.Errorf("logic: unknown relation %q", h.Rel)
		}
		if r.Arity != len(tup) {
			return nil, fmt.Errorf("logic: relation %s has arity %d, used with %d args", h.Rel, r.Arity, len(tup))
		}
		return prop.FVar(g.ix.ID(rel.GroundAtom{Rel: h.Rel, Args: tup})), nil
	case Eq:
		l, err := resolveTerm(g.s, h.L, env)
		if err != nil {
			return nil, err
		}
		r, err := resolveTerm(g.s, h.R, env)
		if err != nil {
			return nil, err
		}
		if l == r {
			return prop.FTrue{}, nil
		}
		return prop.FFalse{}, nil
	case Not:
		b, err := g.ground(h.F, env)
		if err != nil {
			return nil, err
		}
		return prop.FNot{F: b}, nil
	case And:
		parts := make(prop.FAnd, 0, len(h))
		for _, sub := range h {
			b, err := g.ground(sub, env)
			if err != nil {
				return nil, err
			}
			parts = append(parts, b)
		}
		return parts, nil
	case Or:
		parts := make(prop.FOr, 0, len(h))
		for _, sub := range h {
			b, err := g.ground(sub, env)
			if err != nil {
				return nil, err
			}
			parts = append(parts, b)
		}
		return parts, nil
	case Implies:
		return g.ground(Or{Not{h.L}, h.R}, env)
	case Iff:
		return g.ground(Or{And{h.L, h.R}, And{Not{h.L}, Not{h.R}}}, env)
	case Exists:
		return g.groundQuant(h.Vars, h.Body, env, true)
	case Forall:
		return g.groundQuant(h.Vars, h.Body, env, false)
	case SOQuant:
		return nil, fmt.Errorf("logic: cannot ground second-order quantifier over %s/%d", h.Rel, h.Arity)
	default:
		return nil, fmt.Errorf("logic: unknown formula node %T", f)
	}
}

func (g *grounder) groundQuant(vars []string, body Formula, env Env, existential bool) (prop.Formula, error) {
	env = env.Clone()
	count := rel.TupleCount(g.s.N, len(vars))
	if count < 0 {
		return nil, fmt.Errorf("%w: quantifier block of %d variables over universe %d", prop.ErrBudget, len(vars), g.s.N)
	}
	parts := make([]prop.Formula, 0, count)
	var innerErr error
	rel.ForEachTuple(g.s.N, len(vars), func(t rel.Tuple) bool {
		for i, v := range vars {
			env[v] = t[i]
		}
		b, err := g.ground(body, env)
		if err != nil {
			innerErr = err
			return false
		}
		parts = append(parts, b)
		return true
	})
	if innerErr != nil {
		return nil, innerErr
	}
	if existential {
		return prop.FOr(parts), nil
	}
	return prop.FAnd(parts), nil
}

// resolveTerm resolves a term against a structure and environment
// without an Evaluator.
func resolveTerm(s *rel.Structure, t Term, env Env) (int, error) {
	switch u := t.(type) {
	case Var:
		e, ok := env[string(u)]
		if !ok {
			return 0, fmt.Errorf("logic: unbound variable %q", u)
		}
		return e, nil
	case Const:
		e, ok := s.Consts[string(u)]
		if !ok {
			return 0, fmt.Errorf("logic: unknown constant %q", u)
		}
		return e, nil
	case Elem:
		e := int(u)
		if e < 0 || e >= s.N {
			return 0, fmt.Errorf("logic: element %d outside universe [0,%d)", e, s.N)
		}
		return e, nil
	default:
		return 0, fmt.Errorf("logic: unknown term %T", t)
	}
}

// LineageDNF grounds f (under env) and converts the result to a
// simplified DNF over the atom index. For an existential query ψ in the
// sense of Theorem 5.4 the result is the kDNF ψ” of the proof: its
// width is bounded by the number of atoms in the matrix, independent of
// the database size. maxTerms bounds the DNF distribution.
func LineageDNF(s *rel.Structure, f Formula, env Env, ix *AtomIndex, maxTerms int) (prop.DNF, error) {
	pf, err := Ground(s, f, env, ix)
	if err != nil {
		return prop.DNF{}, err
	}
	numVars := ix.Len()
	return prop.ToDNF(pf, numVars, maxTerms)
}
