package logic

import (
	"math/rand"
	"testing"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		src  string
		want Class
	}{
		{"E(x,y) & !S(x)", ClassQuantifierFree},
		{"true", ClassQuantifierFree},
		{"x = y", ClassQuantifierFree},
		{"exists x y z . L(x,y) & R(x,z) & S(y) & S(z)", ClassConjunctive},
		{"exists x . exists y . E(x,y) & x = y", ClassConjunctive},
		{"S(0)", ClassQuantifierFree},
		{"exists x . S(x) | E(x,x)", ClassExistential},
		{"exists x y . E(x,y) & (R1(x) <-> R1(y))", ClassExistential},
		{"forall x . S(x)", ClassUniversal},
		{"!exists x . S(x)", ClassUniversal}, // NNF turns ¬∃ into ∀
		{"!forall x . S(x)", ClassExistential},
		{"forall x . exists y . E(x,y)", ClassFirstOrder},
		{"exists x . S(x) -> forall y . S(y)", ClassFirstOrder},
		{"existsrel C/1 . forall x . C(x)", ClassSecondOrder},
	}
	for _, c := range cases {
		f := MustParse(c.src, nil)
		if got := Classify(f); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestIsConjunctive(t *testing.T) {
	yes := []string{
		"exists x . S(x)",
		"S(x)",
		"exists x y . E(x,y) & S(x) & S(y)",
		"exists x . exists y . (E(x,y) & S(x)) & S(y)",
	}
	no := []string{
		"exists x . S(x) | S(x)",
		"exists x . !S(x)",
		"forall x . S(x)",
		"exists x . S(x) -> S(x)",
	}
	for _, src := range yes {
		if !IsConjunctive(MustParse(src, nil)) {
			t.Errorf("IsConjunctive(%q) = false", src)
		}
	}
	for _, src := range no {
		if IsConjunctive(MustParse(src, nil)) {
			t.Errorf("IsConjunctive(%q) = true", src)
		}
	}
}

func TestNNFEquivalence(t *testing.T) {
	// Property: NNF preserves truth on random structures.
	rng := rand.New(rand.NewSource(321))
	for iter := 0; iter < 150; iter++ {
		s := randStructure(rng, 2+rng.Intn(3))
		f := randSentence(rng, 3, nil)
		n := NNF(f)
		v1, err1 := EvalSentence(s, f)
		v2, err2 := EvalSentence(s, n)
		if err1 != nil || err2 != nil {
			t.Fatalf("iter %d: eval errors %v %v", iter, err1, err2)
		}
		if v1 != v2 {
			t.Fatalf("iter %d: NNF changed truth of %q (nnf %q)", iter, f.String(), n.String())
		}
	}
}

func TestNNFShape(t *testing.T) {
	// NNF must not contain Implies, Iff, or Not above non-atoms.
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 100; iter++ {
		f := randSentence(rng, 4, nil)
		n := NNF(f)
		Walk(n, func(g Formula) bool {
			switch h := g.(type) {
			case Implies, Iff:
				t.Fatalf("NNF contains %T: %v", g, n)
			case Not:
				switch h.F.(type) {
				case Atom, Eq:
				default:
					t.Fatalf("NNF has negation above %T: %v", h.F, n)
				}
			}
			return true
		})
	}
}

func TestNNFSecondOrder(t *testing.T) {
	f := MustParse("!existsrel C/1 . exists x . C(x)", nil)
	n := NNF(f)
	so, ok := n.(SOQuant)
	if !ok || so.Exists {
		t.Fatalf("NNF(!existsrel ...) = %v, want forallrel", n)
	}
	if _, ok := so.Body.(Forall); !ok {
		t.Errorf("inner quantifier not dualized: %v", n)
	}
}

func TestAtomCount(t *testing.T) {
	f := MustParse("exists x . E(x,x) & (S(x) | x = 0)", nil)
	if got := AtomCount(f); got != 3 {
		t.Errorf("AtomCount = %d, want 3", got)
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		ClassQuantifierFree: "quantifier-free",
		ClassConjunctive:    "conjunctive",
		ClassExistential:    "existential",
		ClassUniversal:      "universal",
		ClassFirstOrder:     "first-order",
		ClassSecondOrder:    "second-order",
		Class(99):           "Class(99)",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
}
