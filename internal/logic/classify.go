package logic

import "fmt"

// Class is the paper's query-language classification, ordered by
// inclusion of the corresponding reliability complexity results:
// quantifier-free ⊂ conjunctive ⊂ existential ⊂ first-order ⊂
// second-order.
type Class int

// Query classes, from most to least restricted.
const (
	// ClassQuantifierFree: no quantifiers at all (Proposition 3.1:
	// reliability in FP).
	ClassQuantifierFree Class = iota
	// ClassConjunctive: ∃x̄ (φ1 ∧ ... ∧ φℓ) with atomic φi
	// (Proposition 3.2: reliability may be FP^#P-complete).
	ClassConjunctive
	// ClassExistential: equivalent (after NNF) to a formula with only
	// existential quantifiers (Theorem 5.4: probability has an FPTRAS).
	ClassExistential
	// ClassUniversal: NNF contains only universal quantifiers
	// (Corollary 5.5 applies via the negation).
	ClassUniversal
	// ClassFirstOrder: arbitrary first-order (Theorem 4.2: reliability
	// in FP^#P; Theorem 5.12: absolute-error approximable).
	ClassFirstOrder
	// ClassSecondOrder: contains second-order quantifiers (Theorem 4.2
	// still applies: reliability in FP^#P).
	ClassSecondOrder
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassQuantifierFree:
		return "quantifier-free"
	case ClassConjunctive:
		return "conjunctive"
	case ClassExistential:
		return "existential"
	case ClassUniversal:
		return "universal"
	case ClassFirstOrder:
		return "first-order"
	case ClassSecondOrder:
		return "second-order"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classify returns the most restricted class that syntactically contains
// f (after NNF normalization for the existential/universal tests).
func Classify(f Formula) Class {
	if hasSO(f) {
		return ClassSecondOrder
	}
	if IsQuantifierFree(f) {
		return ClassQuantifierFree
	}
	if IsConjunctive(f) {
		return ClassConjunctive
	}
	n := NNF(f)
	hasE, hasA := quantifierKinds(n)
	switch {
	case hasE && !hasA:
		return ClassExistential
	case hasA && !hasE:
		return ClassUniversal
	default:
		return ClassFirstOrder
	}
}

// Compilable reports whether f is in the fragment the bytecode
// compiler (internal/vm) accepts: every first-order formula grounds
// to a propositional matrix over the finite universe, so only
// second-order quantifiers are out. Grounding can still fail on size
// (MaxGroundTerms), which compilers report as an ordinary error;
// Compilable is the cheap syntactic pre-check.
func Compilable(f Formula) bool {
	return !hasSO(f)
}

// hasSO reports whether f contains a second-order quantifier.
func hasSO(f Formula) bool {
	found := false
	Walk(f, func(g Formula) bool {
		if _, ok := g.(SOQuant); ok {
			found = true
			return false
		}
		return !found
	})
	return found
}

// IsQuantifierFree reports whether f contains no quantifiers of either
// order.
func IsQuantifierFree(f Formula) bool {
	qf := true
	Walk(f, func(g Formula) bool {
		switch g.(type) {
		case Exists, Forall, SOQuant:
			qf = false
			return false
		}
		return qf
	})
	return qf
}

// IsConjunctive reports whether f has the shape ∃x1...∃xk (φ1 ∧ ... ∧ φℓ)
// with every φi a relational or equality atom. Nested Exists blocks and
// nested conjunctions are flattened; a single atom counts as a
// one-conjunct query.
func IsConjunctive(f Formula) bool {
	body := f
	for {
		e, ok := body.(Exists)
		if !ok {
			break
		}
		body = e.Body
	}
	return isAtomConjunction(body)
}

func isAtomConjunction(f Formula) bool {
	switch g := f.(type) {
	case Atom, Eq:
		return true
	case And:
		for _, h := range g {
			if !isAtomConjunction(h) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// quantifierKinds reports which first-order quantifier kinds occur in an
// NNF formula.
func quantifierKinds(f Formula) (hasExists, hasForall bool) {
	Walk(f, func(g Formula) bool {
		switch g.(type) {
		case Exists:
			hasExists = true
		case Forall:
			hasForall = true
		}
		return true
	})
	return
}

// NNF returns the negation normal form of f: implications and
// equivalences are expanded and negations pushed down to atoms. The
// result contains only Bool, Atom, Eq, Not-of-atom, And, Or, Exists,
// Forall and SOQuant nodes.
func NNF(f Formula) Formula {
	return nnf(f, false)
}

func nnf(f Formula, neg bool) Formula {
	switch g := f.(type) {
	case Bool:
		return Bool(bool(g) != neg)
	case Atom:
		if neg {
			return Not{g}
		}
		return g
	case Eq:
		if neg {
			return Not{g}
		}
		return g
	case Not:
		return nnf(g.F, !neg)
	case And:
		parts := make([]Formula, len(g))
		for i, h := range g {
			parts[i] = nnf(h, neg)
		}
		if neg {
			return Or(parts)
		}
		return And(parts)
	case Or:
		parts := make([]Formula, len(g))
		for i, h := range g {
			parts[i] = nnf(h, neg)
		}
		if neg {
			return And(parts)
		}
		return Or(parts)
	case Implies:
		// L -> R  ≡  !L | R
		return nnf(Or{Not{g.L}, g.R}, neg)
	case Iff:
		// L <-> R  ≡  (L & R) | (!L & !R)
		return nnf(Or{And{g.L, g.R}, And{Not{g.L}, Not{g.R}}}, neg)
	case Exists:
		if neg {
			return Forall{Vars: g.Vars, Body: nnf(g.Body, true)}
		}
		return Exists{Vars: g.Vars, Body: nnf(g.Body, false)}
	case Forall:
		if neg {
			return Exists{Vars: g.Vars, Body: nnf(g.Body, true)}
		}
		return Forall{Vars: g.Vars, Body: nnf(g.Body, false)}
	case SOQuant:
		ex := g.Exists
		if neg {
			ex = !ex
		}
		return SOQuant{Exists: ex, Rel: g.Rel, Arity: g.Arity, Body: nnf(g.Body, neg)}
	default:
		panic(fmt.Sprintf("logic: NNF of unknown node %T", f))
	}
}

// AtomCount returns the number of atom occurrences (relational and
// equality) in f. The paper's n(ψ) — the fixed number of propositional
// variables of a quantifier-free query — is bounded by this count.
func AtomCount(f Formula) int {
	count := 0
	Walk(f, func(g Formula) bool {
		switch g.(type) {
		case Atom, Eq:
			count++
		}
		return true
	})
	return count
}
