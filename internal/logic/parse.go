package logic

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"qrel/internal/rel"
)

// Parse parses a formula in the concrete syntax produced by
// Formula.String:
//
//	formula  := iff
//	iff      := impl ('<->' impl)*
//	impl     := or ('->' impl)?                  (right associative)
//	or       := and ('|' and)*
//	and      := unary ('&' unary)*
//	unary    := '!' unary | quant | primary
//	quant    := ('exists'|'forall') ident+ '.' formula
//	          | ('existsrel'|'forallrel') ident '/' number '.' formula
//	primary  := 'true' | 'false' | '(' formula ')'
//	          | ident '(' term (',' term)* ')'   (relational atom)
//	          | term ('='|'!=') term             (equality / negated equality)
//	term     := ident | number | '#' number
//
// Identifiers appearing as terms are parsed as variables unless voc
// declares them as constants; a nil voc makes every identifier a
// variable. Bare numbers as terms denote universe elements directly.
func Parse(input string, voc *rel.Vocabulary) (Formula, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, voc: voc}
	f, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("logic: unexpected %q at end of formula", p.toks[p.pos].text)
	}
	return f, nil
}

// MustParse is Parse that panics on error; for statically known queries
// in tests and examples.
func MustParse(input string, voc *rel.Vocabulary) Formula {
	f, err := Parse(input, voc)
	if err != nil {
		panic(err)
	}
	return f
}

type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokSlash
	tokHash
	tokEq
	tokNeq
	tokNot
	tokAnd
	tokOr
	tokImplies
	tokIff
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == '/':
			toks = append(toks, token{tokSlash, "/", i})
			i++
		case c == '#':
			toks = append(toks, token{tokHash, "#", i})
			i++
		case c == '&':
			toks = append(toks, token{tokAnd, "&", i})
			i++
		case c == '|':
			toks = append(toks, token{tokOr, "|", i})
			i++
		case c == '=':
			toks = append(toks, token{tokEq, "=", i})
			i++
		case c == '!':
			if strings.HasPrefix(input[i:], "!=") {
				toks = append(toks, token{tokNeq, "!=", i})
				i += 2
			} else {
				toks = append(toks, token{tokNot, "!", i})
				i++
			}
		case c == '-':
			if strings.HasPrefix(input[i:], "->") {
				toks = append(toks, token{tokImplies, "->", i})
				i += 2
			} else {
				return nil, fmt.Errorf("logic: position %d: stray '-'", i)
			}
		case c == '<':
			if strings.HasPrefix(input[i:], "<->") {
				toks = append(toks, token{tokIff, "<->", i})
				i += 3
			} else {
				return nil, fmt.Errorf("logic: position %d: stray '<'", i)
			}
		case unicode.IsDigit(c):
			j := i
			for j < len(input) && unicode.IsDigit(rune(input[j])) {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("logic: position %d: unexpected character %q", i, c)
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
	voc  *rel.Vocabulary
	// bound tracks quantified variable names in scope, so identifiers
	// that shadow vocabulary constants still parse as variables.
	bound []string
}

func (p *parser) peek() (token, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return token{}, false
}

func (p *parser) accept(k tokKind) (token, bool) {
	if t, ok := p.peek(); ok && t.kind == k {
		p.pos++
		return t, true
	}
	return token{}, false
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	if t, ok := p.accept(k); ok {
		return t, nil
	}
	if t, ok := p.peek(); ok {
		return token{}, fmt.Errorf("logic: position %d: expected %s, found %q", t.pos, what, t.text)
	}
	return token{}, fmt.Errorf("logic: expected %s, found end of input", what)
}

func (p *parser) isBound(name string) bool {
	for _, b := range p.bound {
		if b == name {
			return true
		}
	}
	return false
}

func (p *parser) parseFormula() (Formula, error) { return p.parseIff() }

func (p *parser) parseIff() (Formula, error) {
	left, err := p.parseImpl()
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := p.accept(tokIff); !ok {
			return left, nil
		}
		right, err := p.parseImpl()
		if err != nil {
			return nil, err
		}
		left = Iff{L: left, R: right}
	}
}

func (p *parser) parseImpl() (Formula, error) {
	left, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if _, ok := p.accept(tokImplies); !ok {
		return left, nil
	}
	right, err := p.parseImpl()
	if err != nil {
		return nil, err
	}
	return Implies{L: left, R: right}, nil
}

func (p *parser) parseOr() (Formula, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	parts := []Formula{left}
	for {
		if _, ok := p.accept(tokOr); !ok {
			break
		}
		next, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return Or(parts), nil
}

func (p *parser) parseAnd() (Formula, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	parts := []Formula{left}
	for {
		if _, ok := p.accept(tokAnd); !ok {
			break
		}
		next, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return And(parts), nil
}

func (p *parser) parseUnary() (Formula, error) {
	if _, ok := p.accept(tokNot); ok {
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{F: f}, nil
	}
	if t, ok := p.peek(); ok && t.kind == tokIdent {
		switch t.text {
		case "exists", "forall":
			return p.parseFOQuant(t.text == "exists")
		case "existsrel", "forallrel":
			return p.parseSOQuant(t.text == "existsrel")
		}
	}
	return p.parsePrimary()
}

func (p *parser) parseFOQuant(existential bool) (Formula, error) {
	p.pos++ // keyword
	var vars []string
	for {
		t, ok := p.peek()
		if !ok || t.kind != tokIdent {
			break
		}
		vars = append(vars, t.text)
		p.pos++
	}
	if len(vars) == 0 {
		return nil, fmt.Errorf("logic: quantifier with no variables")
	}
	if _, err := p.expect(tokDot, "'.' after quantified variables"); err != nil {
		return nil, err
	}
	p.bound = append(p.bound, vars...)
	body, err := p.parseFormula()
	p.bound = p.bound[:len(p.bound)-len(vars)]
	if err != nil {
		return nil, err
	}
	if existential {
		return Exists{Vars: vars, Body: body}, nil
	}
	return Forall{Vars: vars, Body: body}, nil
}

func (p *parser) parseSOQuant(existential bool) (Formula, error) {
	p.pos++ // keyword
	name, err := p.expect(tokIdent, "relation variable name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSlash, "'/' before arity"); err != nil {
		return nil, err
	}
	ar, err := p.expect(tokNumber, "arity")
	if err != nil {
		return nil, err
	}
	arity, err := strconv.Atoi(ar.text)
	if err != nil {
		return nil, fmt.Errorf("logic: bad arity %q", ar.text)
	}
	if _, err := p.expect(tokDot, "'.' after relation variable"); err != nil {
		return nil, err
	}
	body, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	return SOQuant{Exists: existential, Rel: name.text, Arity: arity, Body: body}, nil
}

func (p *parser) parsePrimary() (Formula, error) {
	if _, ok := p.accept(tokLParen); ok {
		f, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return f, nil
	}
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("logic: unexpected end of input")
	}
	if t.kind == tokIdent {
		switch t.text {
		case "true":
			p.pos++
			return Bool(true), nil
		case "false":
			p.pos++
			return Bool(false), nil
		}
		// Lookahead: IDENT '(' is a relational atom.
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokLParen {
			return p.parseAtom()
		}
	}
	// Otherwise it must be an equality between two terms.
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if _, ok := p.accept(tokEq); ok {
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		return Eq{L: left, R: right}, nil
	}
	if _, ok := p.accept(tokNeq); ok {
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		return Not{F: Eq{L: left, R: right}}, nil
	}
	return nil, fmt.Errorf("logic: position %d: expected '=' or '!=' after term %v", t.pos, left)
}

func (p *parser) parseAtom() (Formula, error) {
	name, err := p.expect(tokIdent, "relation name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var args []Term
	if _, ok := p.accept(tokRParen); ok {
		return Atom{Rel: name.text, Args: args}, nil
	}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		args = append(args, t)
		if _, ok := p.accept(tokComma); ok {
			continue
		}
		if _, err := p.expect(tokRParen, "')' or ','"); err != nil {
			return nil, err
		}
		return Atom{Rel: name.text, Args: args}, nil
	}
}

func (p *parser) parseTerm() (Term, error) {
	if _, ok := p.accept(tokHash); ok {
		n, err := p.expect(tokNumber, "element number after '#'")
		if err != nil {
			return nil, err
		}
		e, err := strconv.Atoi(n.text)
		if err != nil {
			return nil, fmt.Errorf("logic: bad element %q", n.text)
		}
		return Elem(e), nil
	}
	if t, ok := p.accept(tokNumber); ok {
		e, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, fmt.Errorf("logic: bad element %q", t.text)
		}
		return Elem(e), nil
	}
	t, err := p.expect(tokIdent, "term")
	if err != nil {
		return nil, err
	}
	// Quantified names are variables even if they shadow constants.
	if !p.isBound(t.text) && p.voc != nil {
		for _, c := range p.voc.Consts {
			if c == t.text {
				return Const(t.text), nil
			}
		}
	}
	return Var(t.text), nil
}
