package logic

import (
	"math/rand"
	"testing"

	"qrel/internal/prop"
	"qrel/internal/rel"
)

// observedAssignment builds the propositional assignment corresponding
// to the structure itself: variable i is true iff its ground atom holds.
func observedAssignment(s *rel.Structure, ix *AtomIndex) []bool {
	a := make([]bool, ix.Len())
	for i, atom := range ix.Atoms() {
		a[i] = s.Holds(atom.Rel, atom.Args)
	}
	return a
}

func TestGroundMatchesEval(t *testing.T) {
	// Property: grounding evaluated at the observed database agrees with
	// direct model checking, for random FO sentences and structures.
	rng := rand.New(rand.NewSource(2024))
	for iter := 0; iter < 150; iter++ {
		s := randStructure(rng, 2+rng.Intn(3))
		f := randSentence(rng, 3, nil)
		direct, err := EvalSentence(s, f)
		if err != nil {
			t.Fatalf("iter %d: eval: %v", iter, err)
		}
		ix := NewAtomIndex()
		pf, err := Ground(s, f, Env{}, ix)
		if err != nil {
			t.Fatalf("iter %d: ground: %v", iter, err)
		}
		got := pf.Eval(observedAssignment(s, ix))
		if got != direct {
			t.Fatalf("iter %d: grounding of %q disagrees with eval (%v vs %v)", iter, f.String(), got, direct)
		}
	}
}

func TestGroundFlippedWorldsMatchEval(t *testing.T) {
	// Stronger property: the grounded formula evaluates correctly on every
	// world B obtained by flipping atoms, matching Eval on the mutated
	// structure. This is exactly what the lineage is for.
	rng := rand.New(rand.NewSource(4096))
	for iter := 0; iter < 60; iter++ {
		s := randStructure(rng, 2)
		f := randSentence(rng, 3, nil)
		ix := NewAtomIndex()
		// Ground over the FULL atom space so flips are visible: allocate
		// every ground atom up front.
		s.ForEachGroundAtom(func(a rel.GroundAtom) bool {
			ix.ID(rel.GroundAtom{Rel: a.Rel, Args: a.Args.Clone()})
			return true
		})
		pf, err := Ground(s, f, Env{}, ix)
		if err != nil {
			t.Fatalf("iter %d: ground: %v", iter, err)
		}
		for world := 0; world < 16; world++ {
			b := s.Clone()
			a := make([]bool, ix.Len())
			for i, atom := range ix.Atoms() {
				a[i] = s.Holds(atom.Rel, atom.Args)
			}
			// Flip a few random atoms.
			for j := 0; j < 3; j++ {
				i := rng.Intn(ix.Len())
				atom := ix.Atom(i)
				b.Rel(atom.Rel).Toggle(atom.Args)
				a[i] = b.Holds(atom.Rel, atom.Args)
			}
			direct, err := EvalSentence(b, f)
			if err != nil {
				t.Fatalf("iter %d: eval world: %v", iter, err)
			}
			if got := pf.Eval(a); got != direct {
				t.Fatalf("iter %d world %d: lineage disagrees with eval for %q", iter, world, f.String())
			}
		}
	}
}

func TestLineageDNFWidthBound(t *testing.T) {
	// Theorem 5.4: for an existential query the lineage kDNF width is
	// bounded by the number of atoms in the matrix, independent of n.
	src := "exists x y z . L(x,y) & R(x,z) & S(y) & S(z)"
	f := MustParse(src, nil)
	voc := rel.MustVocabulary(rel.RelSym{Name: "L", Arity: 2}, rel.RelSym{Name: "R", Arity: 2}, rel.RelSym{Name: "S", Arity: 1})
	for _, n := range []int{2, 4, 6} {
		s := rel.MustStructure(n, voc)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < n; i++ {
			s.MustAdd("L", rng.Intn(n), rng.Intn(n))
			s.MustAdd("R", rng.Intn(n), rng.Intn(n))
			s.MustAdd("S", rng.Intn(n))
		}
		ix := NewAtomIndex()
		d, err := LineageDNF(s, f, Env{}, ix, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if d.Width() > 4 {
			t.Errorf("n=%d: lineage width %d exceeds atom count 4", n, d.Width())
		}
		if len(d.Terms) > n*n*n {
			t.Errorf("n=%d: %d terms exceeds n^3", n, len(d.Terms))
		}
	}
}

func TestLineageDNFEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for iter := 0; iter < 60; iter++ {
		s := randStructure(rng, 2)
		f := randSentence(rng, 3, nil)
		ix := NewAtomIndex()
		s.ForEachGroundAtom(func(a rel.GroundAtom) bool {
			ix.ID(rel.GroundAtom{Rel: a.Rel, Args: a.Args.Clone()})
			return true
		})
		pf, err := Ground(s, f, Env{}, ix)
		if err != nil {
			t.Fatal(err)
		}
		d, err := prop.ToDNF(pf, ix.Len(), 1<<16)
		if err != nil {
			continue // blowup is acceptable for adversarial random formulas
		}
		// Check equivalence on random assignments.
		for trial := 0; trial < 40; trial++ {
			a := make([]bool, ix.Len())
			for i := range a {
				a[i] = rng.Intn(2) == 0
			}
			if pf.Eval(a) != d.Eval(a) {
				t.Fatalf("iter %d: DNF conversion changed lineage semantics", iter)
			}
		}
	}
}

func TestGroundFreeVariables(t *testing.T) {
	s := pathGraph(3)
	f := MustParse("exists y . E(x,y)", nil)
	ix := NewAtomIndex()
	// Free variable x must come from env.
	if _, err := Ground(s, f, Env{}, ix); err == nil {
		t.Error("unbound free variable accepted")
	}
	pf, err := Ground(s, f, Env{"x": 0}, ix)
	if err != nil {
		t.Fatal(err)
	}
	if !pf.Eval(observedAssignment(s, ix)) {
		t.Error("E(0,·) lineage should be true on observed db")
	}
}

func TestGroundRejectsSecondOrder(t *testing.T) {
	s := pathGraph(3)
	f := MustParse("existsrel C/1 . exists x . C(x)", nil)
	if _, err := Ground(s, f, Env{}, NewAtomIndex()); err == nil {
		t.Error("second-order grounding accepted")
	}
}

func TestAtomIndex(t *testing.T) {
	ix := NewAtomIndex()
	a := rel.GroundAtom{Rel: "E", Args: rel.Tuple{0, 1}}
	b := rel.GroundAtom{Rel: "E", Args: rel.Tuple{1, 0}}
	ia := ix.ID(a)
	ib := ix.ID(b)
	if ia == ib {
		t.Error("distinct atoms share id")
	}
	if got := ix.ID(a); got != ia {
		t.Error("re-indexing changed id")
	}
	if ix.Len() != 2 {
		t.Errorf("Len = %d", ix.Len())
	}
	if got := ix.Atom(ia); !got.Equal(a) {
		t.Errorf("Atom(%d) = %v", ia, got)
	}
	if id, ok := ix.Lookup(b); !ok || id != ib {
		t.Error("Lookup failed")
	}
	if _, ok := ix.Lookup(rel.GroundAtom{Rel: "S", Args: rel.Tuple{0}}); ok {
		t.Error("Lookup found unallocated atom")
	}
}
