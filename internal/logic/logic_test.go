package logic

import (
	"math/rand"
	"strings"
	"testing"

	"qrel/internal/rel"
)

// pathGraph returns a structure over {0..n-1} with E the directed path
// 0→1→...→n-1 and S = {0}.
func pathGraph(n int) *rel.Structure {
	voc := rel.MustVocabulary(rel.RelSym{Name: "E", Arity: 2}, rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(n, voc)
	for i := 0; i+1 < n; i++ {
		s.MustAdd("E", i, i+1)
	}
	s.MustAdd("S", 0)
	return s
}

func TestEvalAtomsAndConnectives(t *testing.T) {
	s := pathGraph(4)
	cases := []struct {
		src  string
		want bool
	}{
		{"E(0,1)", true},
		{"E(1,0)", false},
		{"S(0)", true},
		{"S(3)", false},
		{"!E(1,0)", true},
		{"E(0,1) & E(1,2)", true},
		{"E(0,1) & E(2,1)", false},
		{"E(2,1) | E(1,2)", true},
		{"E(2,1) -> E(9,9)", true}, // won't evaluate RHS: vacuous implication short-circuits before range error
		{"E(0,1) <-> E(1,2)", true},
		{"E(0,1) <-> E(1,0)", false},
		{"0 = 0", true},
		{"0 = 1", false},
		{"0 != 1", true},
		{"true", true},
		{"false | true", true},
	}
	for _, c := range cases {
		f, err := Parse(c.src, nil)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		got, err := EvalSentence(s, f)
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("Eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalQuantifiers(t *testing.T) {
	s := pathGraph(4)
	cases := []struct {
		src  string
		want bool
	}{
		{"exists x . S(x)", true},
		{"forall x . S(x)", false},
		{"exists x y . E(x,y)", true},
		{"forall x . exists y . E(x,y)", false}, // 3 has no successor
		{"exists x . forall y . !E(y,x)", true}, // 0 has no predecessor
		{"forall x y . E(x,y) -> !E(y,x)", true},
		{"exists x y z . E(x,y) & E(y,z)", true},
	}
	for _, c := range cases {
		f := MustParse(c.src, nil)
		got, err := EvalSentence(s, f)
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("Eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	s := pathGraph(3)
	bad := []string{
		"X(0)",   // unknown relation
		"E(0)",   // wrong arity
		"E(x,x)", // unbound variable
		"S(c)",   // unknown constant
		"S(#7)",  // element outside universe
	}
	for _, src := range bad {
		f := MustParse(src, nil)
		if _, err := EvalSentence(s, f); err == nil {
			t.Errorf("Eval(%q): expected error", src)
		}
	}
}

func TestEvalConstants(t *testing.T) {
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	voc.AddConst("c")
	s := rel.MustStructure(3, voc)
	s.MustAdd("S", 2)
	s.SetConst("c", 2)
	f := MustParse("S(c)", voc)
	got, err := EvalSentence(s, f)
	if err != nil || !got {
		t.Errorf("S(c) = %v, %v; want true", got, err)
	}
	// A quantified variable shadows the constant.
	f2 := MustParse("forall c . S(c)", voc)
	got2, err := EvalSentence(s, f2)
	if err != nil || got2 {
		t.Errorf("forall c . S(c) = %v, %v; want false", got2, err)
	}
}

func TestAnswer(t *testing.T) {
	s := pathGraph(4)
	f := MustParse("exists y . E(x,y)", nil)
	ans, err := Answer(s, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 3 {
		t.Fatalf("answer %v, want 3 tuples", ans)
	}
	// Sentence answers: one empty tuple when true, none when false.
	ansT, _ := Answer(s, MustParse("exists x . S(x)", nil))
	if len(ansT) != 1 || len(ansT[0]) != 0 {
		t.Errorf("sentence true answer = %v", ansT)
	}
	ansF, _ := Answer(s, MustParse("forall x . S(x)", nil))
	if len(ansF) != 0 {
		t.Errorf("sentence false answer = %v", ansF)
	}
}

func TestSecondOrderEval(t *testing.T) {
	// 2-colourability of a path: true; of a triangle: false.
	twoCol := "existsrel C/1 . forall x y . E(x,y) -> ((C(x) & !C(y)) | (!C(x) & C(y)))"
	f := MustParse(twoCol, nil)

	path := pathGraph(4)
	got, err := EvalSentence(path, f)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("path should be 2-colourable")
	}

	voc := rel.MustVocabulary(rel.RelSym{Name: "E", Arity: 2})
	tri := rel.MustStructure(3, voc)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		tri.MustAdd("E", e[0], e[1])
		tri.MustAdd("E", e[1], e[0])
	}
	got, err = EvalSentence(tri, f)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("triangle should not be 2-colourable")
	}

	// Universal SO quantifier: every unary relation contains no element of
	// the empty universe part — trivially true statement.
	all := MustParse("forallrel U/1 . forall x . U(x) -> U(x)", nil)
	got, err = EvalSentence(tri, all)
	if err != nil || !got {
		t.Errorf("forallrel tautology = %v, %v", got, err)
	}
}

func TestSecondOrderBudget(t *testing.T) {
	s := pathGraph(6) // 6^2 = 36 > MaxSOTuples
	f := MustParse("existsrel R/2 . exists x y . R(x,y)", nil)
	if _, err := EvalSentence(s, f); err == nil {
		t.Error("SO budget not enforced")
	}
	// Arity out of range.
	g := SOQuant{Exists: true, Rel: "R", Arity: rel.MaxArity + 1, Body: Bool(true)}
	if _, err := EvalSentence(s, g); err == nil {
		t.Error("SO arity not validated")
	}
}

func TestFreeVars(t *testing.T) {
	f := MustParse("exists y . E(x,y) & S(z) & x = w", nil)
	got := FreeVars(f)
	want := []string{"x", "z", "w"}
	if len(got) != len(want) {
		t.Fatalf("FreeVars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FreeVars = %v, want %v", got, want)
		}
	}
	if vs := FreeVars(MustParse("forall x . S(x)", nil)); len(vs) != 0 {
		t.Errorf("sentence has free vars %v", vs)
	}
	// Same variable bound in one branch, free in another.
	f2 := MustParse("S(x) & exists x . S(x)", nil)
	if vs := FreeVars(f2); len(vs) != 1 || vs[0] != "x" {
		t.Errorf("FreeVars = %v, want [x]", vs)
	}
}

func TestParseRoundTrip(t *testing.T) {
	srcs := []string{
		"exists x y z . (L(x,y)) & (R(x,z)) & (S(y)) & (S(z))",
		"forall x . (S(x)) -> (exists y . E(x,y))",
		"!S(0)",
		"(E(x,y)) <-> (E(y,x))",
		"existsrel C/1 . forall x . (C(x)) | (!C(x))",
		"x = y",
		"true",
	}
	for _, src := range srcs {
		f, err := Parse(src, nil)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		printed := f.String()
		f2, err := Parse(printed, nil)
		if err != nil {
			t.Fatalf("reparse of %q (printed %q): %v", src, printed, err)
		}
		if f2.String() != printed {
			t.Errorf("print/parse not stable: %q -> %q", printed, f2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"E(0,1",
		"E(0,1))",
		"exists . S(x)",
		"exists x S(x)",
		"existsrel R . S(x)",
		"E(0,1) &",
		"x",
		"x =",
		"@",
		"E(0,1) - S(0)",
		"E(0,1) < S(0)",
		"#x",
		"existsrel R/x . S(0)",
	}
	for _, src := range bad {
		if _, err := Parse(src, nil); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// & binds tighter than |, -> is right-associative and looser than |.
	f := MustParse("S(0) | S(1) & S(2) -> S(3)", nil)
	imp, ok := f.(Implies)
	if !ok {
		t.Fatalf("top node %T, want Implies", f)
	}
	or, ok := imp.L.(Or)
	if !ok || len(or) != 2 {
		t.Fatalf("LHS %T, want Or of 2", imp.L)
	}
	if _, ok := or[1].(And); !ok {
		t.Fatalf("second disjunct %T, want And", or[1])
	}
	// Right associativity of ->.
	g := MustParse("S(0) -> S(1) -> S(2)", nil)
	top := g.(Implies)
	if _, ok := top.R.(Implies); !ok {
		t.Error("-> not right-associative")
	}
	// Quantifier scope extends maximally right.
	h := MustParse("exists x . S(x) & S(0)", nil)
	ex := h.(Exists)
	if _, ok := ex.Body.(And); !ok {
		t.Error("quantifier scope did not extend over &")
	}
}

func TestWalkAndSORelNames(t *testing.T) {
	f := MustParse("existsrel C/1 . exists x . C(x) & E(x,x)", nil)
	count := 0
	Walk(f, func(Formula) bool { count++; return true })
	if count != 5 { // SOQuant, Exists, And, Atom, Atom
		t.Errorf("Walk visited %d nodes, want 5", count)
	}
	names := SORelNames(f)
	if len(names) != 1 || names[0] != "C" {
		t.Errorf("SORelNames = %v", names)
	}
	// Early pruning.
	count = 0
	Walk(f, func(Formula) bool { count++; return false })
	if count != 1 {
		t.Errorf("pruned Walk visited %d", count)
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		f    Formula
		want string
	}{
		{Bool(true), "true"},
		{Bool(false), "false"},
		{And{}, "true"},
		{Or{}, "false"},
		{Atom{Rel: "E", Args: []Term{Var("x"), Elem(3)}}, "E(x,#3)"},
		{Not{Eq{Var("x"), Const("c")}}, "!x = c"},
		{SOQuant{Exists: false, Rel: "R", Arity: 2, Body: Bool(true)}, "forallrel R/2 . true"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

// randSentence builds a random FO sentence over E/2, S/1 with all
// variables bound, for cross-checking evaluation strategies.
func randSentence(rng *rand.Rand, depth int, scope []string) Formula {
	if depth == 0 || (len(scope) > 0 && rng.Intn(3) == 0) {
		if len(scope) == 0 {
			return Bool(rng.Intn(2) == 0)
		}
		v := func() Term { return Var(scope[rng.Intn(len(scope))]) }
		switch rng.Intn(4) {
		case 0:
			return Atom{Rel: "S", Args: []Term{v()}}
		case 1:
			return Eq{L: v(), R: v()}
		default:
			return Atom{Rel: "E", Args: []Term{v(), v()}}
		}
	}
	switch rng.Intn(6) {
	case 0:
		return Not{randSentence(rng, depth-1, scope)}
	case 1:
		return And{randSentence(rng, depth-1, scope), randSentence(rng, depth-1, scope)}
	case 2:
		return Or{randSentence(rng, depth-1, scope), randSentence(rng, depth-1, scope)}
	case 3:
		return Implies{randSentence(rng, depth-1, scope), randSentence(rng, depth-1, scope)}
	default:
		name := "v" + string(rune('a'+len(scope)))
		inner := randSentence(rng, depth-1, append(scope, name))
		if rng.Intn(2) == 0 {
			return Exists{Vars: []string{name}, Body: inner}
		}
		return Forall{Vars: []string{name}, Body: inner}
	}
}

func randStructure(rng *rand.Rand, n int) *rel.Structure {
	voc := rel.MustVocabulary(rel.RelSym{Name: "E", Arity: 2}, rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(n, voc)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Intn(3) == 0 {
				s.MustAdd("E", i, j)
			}
		}
		if rng.Intn(2) == 0 {
			s.MustAdd("S", i)
		}
	}
	return s
}

func TestParsePrintEvalAgree(t *testing.T) {
	// Property: printing then reparsing preserves evaluation.
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 120; iter++ {
		s := randStructure(rng, 2+rng.Intn(3))
		f := randSentence(rng, 3, nil)
		v1, err := EvalSentence(s, f)
		if err != nil {
			t.Fatalf("iter %d: eval: %v", iter, err)
		}
		f2, err := Parse(f.String(), nil)
		if err != nil {
			t.Fatalf("iter %d: reparse %q: %v", iter, f.String(), err)
		}
		v2, err := EvalSentence(s, f2)
		if err != nil {
			t.Fatalf("iter %d: eval reparsed: %v", iter, err)
		}
		if v1 != v2 {
			t.Fatalf("iter %d: %q evaluates differently after round trip", iter, f.String())
		}
	}
}

func TestParseKeywordsNotAtoms(t *testing.T) {
	// "exists" as relation name would be ambiguous; ensure keyword wins
	// and a sensible error results.
	if _, err := Parse("exists(x)", nil); err == nil {
		t.Error("Parse(\"exists(x)\") should fail: keyword")
	}
	// But "existsx" is a normal identifier.
	f, err := Parse("existsx(0)", nil)
	if err != nil {
		t.Fatalf("identifier starting with keyword: %v", err)
	}
	if a, ok := f.(Atom); !ok || a.Rel != "existsx" {
		t.Errorf("parsed %v", f)
	}
}

func TestParseWhitespaceRobust(t *testing.T) {
	f1 := MustParse("exists x.S(x)&E(x,x)", nil)
	f2 := MustParse("  exists   x .\tS( x ) & E(x , x)  ", nil)
	if f1.String() != f2.String() {
		t.Errorf("whitespace changed parse: %q vs %q", f1.String(), f2.String())
	}
}

func TestNonFOQueryStrings(t *testing.T) {
	// The paper's running queries parse and classify as expected.
	mon2sat := "exists x y z . L(x,y) & R(x,z) & S(y) & S(z)"
	if got := Classify(MustParse(mon2sat, nil)); got != ClassConjunctive {
		t.Errorf("Classify(%q) = %v, want conjunctive", mon2sat, got)
	}
	fourCol := "exists x y . E(x,y) & (R1(x) <-> R1(y)) & (R2(x) <-> R2(y))"
	if got := Classify(MustParse(fourCol, nil)); got != ClassExistential {
		t.Errorf("Classify(%q) = %v, want existential", fourCol, got)
	}
	if !strings.Contains(MustParse(fourCol, nil).String(), "<->") {
		t.Error("printer lost <->")
	}
}
