package logic

import (
	"fmt"
)

// Substitute returns f with every free occurrence of a variable in
// subst replaced by the given term, renaming bound variables where
// necessary to avoid capture (when a substituted term mentions a
// variable that a quantifier would bind).
func Substitute(f Formula, subst map[string]Term) Formula {
	s := &substituter{fresh: newFreshNamer(f, subst)}
	return s.apply(f, subst)
}

type substituter struct {
	fresh *freshNamer
}

func (s *substituter) term(t Term, subst map[string]Term) Term {
	if v, ok := t.(Var); ok {
		if repl, ok := subst[string(v)]; ok {
			return repl
		}
	}
	return t
}

func (s *substituter) terms(ts []Term, subst map[string]Term) []Term {
	out := make([]Term, len(ts))
	for i, t := range ts {
		out[i] = s.term(t, subst)
	}
	return out
}

func (s *substituter) apply(f Formula, subst map[string]Term) Formula {
	switch g := f.(type) {
	case Bool:
		return g
	case Atom:
		return Atom{Rel: g.Rel, Args: s.terms(g.Args, subst)}
	case Eq:
		return Eq{L: s.term(g.L, subst), R: s.term(g.R, subst)}
	case Not:
		return Not{F: s.apply(g.F, subst)}
	case And:
		out := make(And, len(g))
		for i, h := range g {
			out[i] = s.apply(h, subst)
		}
		return out
	case Or:
		out := make(Or, len(g))
		for i, h := range g {
			out[i] = s.apply(h, subst)
		}
		return out
	case Implies:
		return Implies{L: s.apply(g.L, subst), R: s.apply(g.R, subst)}
	case Iff:
		return Iff{L: s.apply(g.L, subst), R: s.apply(g.R, subst)}
	case Exists:
		vars, body := s.applyQuant(g.Vars, g.Body, subst)
		return Exists{Vars: vars, Body: body}
	case Forall:
		vars, body := s.applyQuant(g.Vars, g.Body, subst)
		return Forall{Vars: vars, Body: body}
	case SOQuant:
		return SOQuant{Exists: g.Exists, Rel: g.Rel, Arity: g.Arity, Body: s.apply(g.Body, subst)}
	default:
		panic(fmt.Sprintf("logic: Substitute of unknown node %T", f))
	}
}

// applyQuant handles a quantifier block: bound variables shadow the
// substitution, and any bound variable that would capture a variable of
// a substituted term is renamed to a fresh name.
func (s *substituter) applyQuant(vars []string, body Formula, subst map[string]Term) ([]string, Formula) {
	inner := make(map[string]Term, len(subst))
	for k, v := range subst {
		inner[k] = v
	}
	// The substituted terms' free variables, for capture detection.
	captured := map[string]bool{}
	for k, t := range subst {
		_ = k
		if v, ok := t.(Var); ok {
			captured[string(v)] = true
		}
	}
	newVars := append([]string(nil), vars...)
	for i, v := range vars {
		delete(inner, v) // bound: shadowed
		if captured[v] {
			// Rename this bound variable to avoid capturing an incoming
			// term.
			nv := s.fresh.next(v)
			newVars[i] = nv
			inner[v] = Var(nv)
		}
	}
	return newVars, s.apply(body, inner)
}

// freshNamer issues variable names not occurring anywhere in the
// formula or the substitution.
type freshNamer struct {
	used map[string]bool
	n    int
}

func newFreshNamer(f Formula, subst map[string]Term) *freshNamer {
	used := map[string]bool{}
	collectVarNames(f, used)
	for k, t := range subst {
		used[k] = true
		if v, ok := t.(Var); ok {
			used[string(v)] = true
		}
	}
	return &freshNamer{used: used}
}

func (fr *freshNamer) next(base string) string {
	for {
		fr.n++
		name := fmt.Sprintf("%s_%d", base, fr.n)
		if !fr.used[name] {
			fr.used[name] = true
			return name
		}
	}
}

// collectVarNames gathers every variable name (free or bound) in f.
func collectVarNames(f Formula, out map[string]bool) {
	noteTerm := func(t Term) {
		if v, ok := t.(Var); ok {
			out[string(v)] = true
		}
	}
	Walk(f, func(g Formula) bool {
		switch h := g.(type) {
		case Atom:
			for _, t := range h.Args {
				noteTerm(t)
			}
		case Eq:
			noteTerm(h.L)
			noteTerm(h.R)
		case Exists:
			for _, v := range h.Vars {
				out[v] = true
			}
		case Forall:
			for _, v := range h.Vars {
				out[v] = true
			}
		}
		return true
	})
}

// Prenex converts a first-order formula into prenex normal form: a
// (possibly alternating) quantifier prefix over a quantifier-free
// matrix, logically equivalent to the input. Bound variables are
// standardized apart first. Second-order quantifiers are rejected.
func Prenex(f Formula) (Formula, error) {
	if hasSO(f) {
		return nil, fmt.Errorf("logic: Prenex does not support second-order quantifiers")
	}
	n := NNF(f)
	n = standardizeApart(n, newFreshNamer(n, nil))
	prefix, matrix := pullQuantifiers(n)
	out := matrix
	for i := len(prefix) - 1; i >= 0; i-- {
		q := prefix[i]
		if q.exists {
			out = Exists{Vars: []string{q.v}, Body: out}
		} else {
			out = Forall{Vars: []string{q.v}, Body: out}
		}
	}
	return out, nil
}

type quant struct {
	exists bool
	v      string
}

// standardizeApart renames every bound variable to a globally unique
// name. The input must be in NNF (no Implies/Iff).
func standardizeApart(f Formula, fresh *freshNamer) Formula {
	var walk func(Formula, map[string]Term) Formula
	walk = func(g Formula, ren map[string]Term) Formula {
		switch h := g.(type) {
		case Bool:
			return h
		case Atom, Eq:
			return Substitute(h, ren)
		case Not:
			return Not{F: walk(h.F, ren)}
		case And:
			out := make(And, len(h))
			for i, sub := range h {
				out[i] = walk(sub, ren)
			}
			return out
		case Or:
			out := make(Or, len(h))
			for i, sub := range h {
				out[i] = walk(sub, ren)
			}
			return out
		case Exists, Forall:
			var vars []string
			var body Formula
			exists := false
			if e, ok := h.(Exists); ok {
				vars, body, exists = e.Vars, e.Body, true
			} else {
				fa := h.(Forall)
				vars, body = fa.Vars, fa.Body
			}
			inner := make(map[string]Term, len(ren))
			for k, v := range ren {
				inner[k] = v
			}
			newVars := make([]string, len(vars))
			for i, v := range vars {
				nv := fresh.next(v)
				newVars[i] = nv
				inner[v] = Var(nv)
			}
			nb := walk(body, inner)
			if exists {
				return Exists{Vars: newVars, Body: nb}
			}
			return Forall{Vars: newVars, Body: nb}
		default:
			panic(fmt.Sprintf("logic: standardizeApart on non-NNF node %T", g))
		}
	}
	return walk(f, map[string]Term{})
}

// pullQuantifiers extracts the quantifier prefix of a standardized NNF
// formula. Since all bound names are distinct, prefixes of siblings can
// be concatenated freely.
func pullQuantifiers(f Formula) ([]quant, Formula) {
	switch g := f.(type) {
	case Exists:
		inner, matrix := pullQuantifiers(g.Body)
		prefix := make([]quant, 0, len(g.Vars)+len(inner))
		for _, v := range g.Vars {
			prefix = append(prefix, quant{exists: true, v: v})
		}
		return append(prefix, inner...), matrix
	case Forall:
		inner, matrix := pullQuantifiers(g.Body)
		prefix := make([]quant, 0, len(g.Vars)+len(inner))
		for _, v := range g.Vars {
			prefix = append(prefix, quant{exists: false, v: v})
		}
		return append(prefix, inner...), matrix
	case And:
		var prefix []quant
		out := make(And, len(g))
		for i, h := range g {
			p, m := pullQuantifiers(h)
			prefix = append(prefix, p...)
			out[i] = m
		}
		return prefix, out
	case Or:
		var prefix []quant
		out := make(Or, len(g))
		for i, h := range g {
			p, m := pullQuantifiers(h)
			prefix = append(prefix, p...)
			out[i] = m
		}
		return prefix, out
	case Not:
		// NNF: negation only above atoms; nothing to pull.
		return nil, g
	default:
		return nil, g
	}
}
