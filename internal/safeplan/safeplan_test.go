package safeplan_test

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"time"

	"qrel/internal/core"
	"qrel/internal/logic"
	"qrel/internal/reductions"
	"qrel/internal/rel"
	"qrel/internal/safeplan"
	"qrel/internal/unreliable"
)

func testVoc() *rel.Vocabulary {
	return rel.MustVocabulary(
		rel.RelSym{Name: "S", Arity: 1},
		rel.RelSym{Name: "T", Arity: 1},
		rel.RelSym{Name: "L", Arity: 2},
		rel.RelSym{Name: "R", Arity: 2},
	)
}

func randTupleIndepDB(rng *rand.Rand, n int) *unreliable.DB {
	s := rel.MustStructure(n, testVoc())
	db := unreliable.New(s)
	addAtom := func(name string, args ...int) {
		atom := rel.GroundAtom{Rel: name, Args: rel.Tuple(args)}
		if rng.Intn(2) == 0 {
			s.MustAdd(name, args...)
		}
		if rng.Intn(2) == 0 {
			db.MustSetError(atom, big.NewRat(int64(1+rng.Intn(9)), 10))
		}
	}
	for i := 0; i < n; i++ {
		addAtom("S", rng.Intn(n))
		addAtom("T", rng.Intn(n))
		addAtom("L", rng.Intn(n), rng.Intn(n))
		addAtom("R", rng.Intn(n), rng.Intn(n))
	}
	return db
}

func TestFromFormulaValidation(t *testing.T) {
	good := []string{
		"exists x . S(x)",
		"exists x y . S(x) & L(x,y)",
		"exists x . S(x) & T(x)",
		"exists x y . L(x,y) & S(#0)",
	}
	for _, src := range good {
		if _, err := safeplan.FromFormula(logic.MustParse(src, nil)); err != nil {
			t.Errorf("safeplan.FromFormula(%q): %v", src, err)
		}
	}
	bad := []string{
		"exists y . L(x,y)",            // free variable
		"exists x . S(x) | T(x)",       // disjunction
		"exists x . !S(x)",             // negation
		"exists x y . L(x,y) & x = y",  // equality
		"exists x y . L(x,y) & L(y,x)", // self-join
		"forall x . S(x)",              // universal
		"exists x . S(c)",              // named constant
	}
	for _, src := range bad {
		if _, err := safeplan.FromFormula(logic.MustParse(src, nil)); err == nil {
			t.Errorf("safeplan.FromFormula(%q): expected error", src)
		}
	}
}

func TestIsHierarchical(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"exists x . S(x)", true},
		{"exists x y . L(x,y)", true},
		{"exists x y . S(x) & L(x,y)", true},
		{"exists x y . L(x,y) & T(y)", true},
		{"exists x y . S(x) & L(x,y) & T(y)", false}, // the classic hard H0
		{"exists x y . S(x) & T(y)", true},           // disjoint: independent join
		{"exists x y . S(x) & L(x,y) & R(x,y)", true},
	}
	for _, c := range cases {
		q, err := safeplan.FromFormula(logic.MustParse(c.src, nil))
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if got := q.IsHierarchical(); got != c.want {
			t.Errorf("IsHierarchical(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestPaperHardQueryIsNotHierarchical(t *testing.T) {
	// Proposition 3.2's query, with the self-join on S removed by the
	// dichotomy's own lens: as written it even HAS a self-join (S twice),
	// so the safe fragment rejects it at parse time.
	f := logic.MustParse(reductions.Mon2SatQuery, nil)
	if _, err := safeplan.FromFormula(f); err == nil {
		t.Error("Prop 3.2 query accepted despite self-join")
	}
	// Its self-join-free core L(x,y), R(x,z), S(y), T(z) is
	// non-hierarchical: sg(y) and sg(z) overlap in nothing — check the
	// variant sharing the existential pattern: S(y) vs T(z) are disjoint;
	// the genuinely non-hierarchical witness is H0, covered above. Here
	// verify the evaluator refuses H0 with safeplan.ErrNotHierarchical.
	h0, err := safeplan.FromFormula(logic.MustParse("exists x y . S(x) & L(x,y) & T(y)", nil))
	if err != nil {
		t.Fatal(err)
	}
	db := randTupleIndepDB(rand.New(rand.NewSource(1)), 3)
	if _, err := h0.Prob(db); !errors.Is(err, safeplan.ErrNotHierarchical) {
		t.Errorf("H0 evaluation: want safeplan.ErrNotHierarchical, got %v", err)
	}
}

func TestProbMatchesBDDExactly(t *testing.T) {
	// Property: the safe plan and the exact lineage BDD agree as exact
	// rationals on every hierarchical query and random database.
	queries := []string{
		"exists x . S(x)",
		"exists x y . L(x,y)",
		"exists x y . S(x) & L(x,y)",
		"exists x y . L(x,y) & T(y)",
		"exists x y . S(x) & T(y)",
		"exists x y . S(x) & L(x,y) & R(x,y)",
		"exists x . S(x) & T(x)",
		"exists x y . L(x,y) & S(#0)",
	}
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 12; iter++ {
		db := randTupleIndepDB(rng, 2+rng.Intn(3))
		for _, src := range queries {
			f := logic.MustParse(src, nil)
			q, err := safeplan.FromFormula(f)
			if err != nil {
				t.Fatal(err)
			}
			if !q.IsHierarchical() {
				t.Fatalf("%q should be hierarchical", src)
			}
			got, err := q.Prob(db)
			if err != nil {
				t.Fatalf("iter %d %q: %v", iter, src, err)
			}
			want, err := core.NuExistential(context.Background(), db, f, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("iter %d %q: safe plan %v, BDD %v", iter, src, got, want)
			}
		}
	}
}

func TestProbScales(t *testing.T) {
	// Polynomial time at a size far beyond world enumeration: n = 200
	// with ~600 uncertain atoms.
	rng := rand.New(rand.NewSource(3))
	n := 200
	s := rel.MustStructure(n, testVoc())
	db := unreliable.New(s)
	for i := 0; i < n; i++ {
		s.MustAdd("S", i)
		db.MustSetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{i}}, big.NewRat(1, 3))
		s.MustAdd("L", i, (i+1)%n)
		db.MustSetError(rel.GroundAtom{Rel: "L", Args: rel.Tuple{i, (i + 1) % n}}, big.NewRat(1, 4))
		_ = rng
	}
	q, err := safeplan.FromFormula(logic.MustParse("exists x y . S(x) & L(x,y)", nil))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	p, err := q.Prob(db)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("safe plan took %v at n=200; should be fast", elapsed)
	}
	if p.Sign() <= 0 || p.Cmp(big.NewRat(1, 1)) > 0 {
		t.Errorf("probability %v out of range", p)
	}
	// Hand-check: Pr[∃x (S(x) ∧ ∃y L(x,y))] with S(i) at 2/3, L-chain
	// edge at 3/4: per x, Pr = 2/3 · 3/4 = 1/2; independent across x:
	// Pr = 1 − (1/2)^200.
	want := new(big.Rat).Sub(big.NewRat(1, 1),
		new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), 200)))
	if p.Cmp(want) != 0 {
		t.Errorf("p = %v, want 1 − 2^-200", p)
	}
}

func TestProbGroundQuery(t *testing.T) {
	voc := testVoc()
	s := rel.MustStructure(2, voc)
	s.MustAdd("S", 0)
	db := unreliable.New(s)
	db.MustSetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{0}}, big.NewRat(1, 4))
	db.MustSetError(rel.GroundAtom{Rel: "T", Args: rel.Tuple{1}}, big.NewRat(1, 3))
	q, err := safeplan.FromFormula(logic.MustParse("S(#0) & T(#1)", nil))
	if err != nil {
		t.Fatal(err)
	}
	p, err := q.Prob(db)
	if err != nil {
		t.Fatal(err)
	}
	// Pr = (3/4)·(1/3) = 1/4.
	if p.Cmp(big.NewRat(1, 4)) != 0 {
		t.Errorf("p = %v, want 1/4", p)
	}
}

func TestQueryString(t *testing.T) {
	q, err := safeplan.FromFormula(logic.MustParse("exists x y . S(x) & L(x,y)", nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := q.String(); got != "S(x) & L(x,y)" {
		t.Errorf("String = %q", got)
	}
}
