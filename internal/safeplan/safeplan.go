// Package safeplan implements the extensional ("safe plan") evaluation
// of Boolean conjunctive queries on tuple-independent probabilistic
// databases: for *hierarchical* queries without self-joins, the
// probability Pr[B ⊨ psi] is computed exactly in polynomial time by
// independent-join and independent-project steps (Dalvi & Suciu's
// dichotomy, VLDB 2004 — the direct successor of this paper's
// complexity study).
//
// The connection to the paper: Proposition 3.2's hard query
// ∃x∃y∃z (Lxy ∧ Rxz ∧ Sy ∧ Sz) is non-hierarchical — sg(y) = {L, S*}
// and sg(z) = {R, S*} overlap without containment — so the safe-plan
// evaluator rejects it, exactly where #P-hardness begins. Hierarchical
// queries, by contrast, are evaluated exactly at sizes far beyond any
// enumeration or BDD engine (experiment E12).
package safeplan

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"qrel/internal/logic"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// Query is a Boolean conjunctive query without self-joins: implicitly
// existentially quantified variables over a conjunction of relational
// atoms, each relation name occurring at most once.
type Query struct {
	Atoms []logic.Atom
}

// FromFormula extracts a Query from a formula, validating that it is a
// Boolean conjunctive query (∃* over a conjunction of relational atoms)
// without self-joins, equalities or named constants.
func FromFormula(f logic.Formula) (*Query, error) {
	if fv := logic.FreeVars(f); len(fv) != 0 {
		return nil, fmt.Errorf("safeplan: query must be Boolean, has free variables %v", fv)
	}
	body := f
	for {
		e, ok := body.(logic.Exists)
		if !ok {
			break
		}
		body = e.Body
	}
	q := &Query{}
	if err := collectAtoms(body, q); err != nil {
		return nil, err
	}
	if len(q.Atoms) == 0 {
		return nil, fmt.Errorf("safeplan: empty query")
	}
	seen := map[string]bool{}
	for _, a := range q.Atoms {
		if seen[a.Rel] {
			return nil, fmt.Errorf("safeplan: self-join on %s (the dichotomy requires distinct relations)", a.Rel)
		}
		seen[a.Rel] = true
		for _, t := range a.Args {
			switch t.(type) {
			case logic.Var, logic.Elem:
			default:
				return nil, fmt.Errorf("safeplan: unsupported term %v (only variables and elements)", t)
			}
		}
	}
	return q, nil
}

func collectAtoms(f logic.Formula, q *Query) error {
	switch g := f.(type) {
	case logic.Atom:
		q.Atoms = append(q.Atoms, g)
		return nil
	case logic.And:
		for _, h := range g {
			if err := collectAtoms(h, q); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("safeplan: query is not a conjunction of relational atoms (found %T)", f)
	}
}

// String renders the query as a conjunction.
func (q *Query) String() string {
	parts := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, " & ")
}

// vars returns the distinct variables of the atoms, sorted.
func (q *Query) vars() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if v, ok := t.(logic.Var); ok && !seen[string(v)] {
				seen[string(v)] = true
				out = append(out, string(v))
			}
		}
	}
	sort.Strings(out)
	return out
}

// sg returns the indices of atoms containing variable v.
func (q *Query) sg(v string) map[int]bool {
	out := map[int]bool{}
	for i, a := range q.Atoms {
		for _, t := range a.Args {
			if vv, ok := t.(logic.Var); ok && string(vv) == v {
				out[i] = true
			}
		}
	}
	return out
}

// IsHierarchical reports whether the query is hierarchical: for every
// pair of variables, their subgoal sets are nested or disjoint. By the
// Dalvi–Suciu dichotomy this characterizes exactly the PTIME-computable
// conjunctive queries (without self-joins) on tuple-independent
// databases; everything else is #P-hard.
func (q *Query) IsHierarchical() bool {
	vars := q.vars()
	for i := 0; i < len(vars); i++ {
		for j := i + 1; j < len(vars); j++ {
			a, b := q.sg(vars[i]), q.sg(vars[j])
			inter, aSubB, bSubA := false, true, true
			for k := range a {
				if b[k] {
					inter = true
				} else {
					aSubB = false
				}
			}
			for k := range b {
				if !a[k] {
					bSubA = false
				}
			}
			if inter && !aSubB && !bSubA {
				return false
			}
		}
	}
	return true
}

// Prob computes Pr[B ⊨ q] on the tuple-independent database exactly, in
// time polynomial in the database, via the safe plan:
//
//   - independent join: connected components (by shared variables)
//     refer to disjoint sets of ground atoms (no self-joins), so their
//     probabilities multiply;
//   - independent project: a root variable occurring in every atom of a
//     component makes the instantiations x := a independent, so
//     Pr = 1 − Π_a (1 − Pr[q[x := a]]);
//   - base: a ground atom has probability nu(atom).
//
// A non-hierarchical query has a component with no root variable and is
// rejected (ErrNotHierarchical) — that is where Proposition 3.2's
// #P-hardness lives.
func (q *Query) Prob(db *unreliable.DB) (*big.Rat, error) {
	env := map[string]int{}
	return evalConj(db, q.Atoms, env)
}

// ErrNotHierarchical is wrapped in errors returned for queries outside
// the safe fragment.
var ErrNotHierarchical = fmt.Errorf("safeplan: query is not hierarchical (reliability is #P-hard)")

func evalConj(db *unreliable.DB, atoms []logic.Atom, env map[string]int) (*big.Rat, error) {
	one := big.NewRat(1, 1)
	// Split into connected components by shared unbound variables.
	comps := components(atoms, env)
	result := new(big.Rat).Set(one)
	for _, comp := range comps {
		p, err := evalComponent(db, comp, env)
		if err != nil {
			return nil, err
		}
		result.Mul(result, p)
		if result.Sign() == 0 {
			return result, nil
		}
	}
	return result, nil
}

func evalComponent(db *unreliable.DB, atoms []logic.Atom, env map[string]int) (*big.Rat, error) {
	one := big.NewRat(1, 1)
	// Fully ground component: product of atom marginals (distinct
	// relations ⇒ distinct, independent ground atoms).
	root, allGround := rootVariable(atoms, env)
	if allGround {
		p := new(big.Rat).Set(one)
		for _, a := range atoms {
			ga, err := groundAtom(db, a, env)
			if err != nil {
				return nil, err
			}
			p.Mul(p, db.NuAtom(ga))
			if p.Sign() == 0 {
				return p, nil
			}
		}
		return p, nil
	}
	if root == "" {
		return nil, fmt.Errorf("%w: component {%s} has no root variable", ErrNotHierarchical, atomsString(atoms))
	}
	// Independent project over the root variable.
	failAll := new(big.Rat).Set(one)
	for e := 0; e < db.A.N; e++ {
		env[root] = e
		p, err := evalConj(db, atoms, env)
		if err != nil {
			delete(env, root)
			return nil, err
		}
		failAll.Mul(failAll, new(big.Rat).Sub(one, p))
		if failAll.Sign() == 0 {
			break
		}
	}
	delete(env, root)
	return failAll.Sub(one, failAll), nil
}

// rootVariable returns an unbound variable occurring in every atom, or
// "" if none; allGround reports whether no unbound variables remain.
func rootVariable(atoms []logic.Atom, env map[string]int) (string, bool) {
	counts := map[string]int{}
	anyVar := false
	for _, a := range atoms {
		seen := map[string]bool{}
		for _, t := range a.Args {
			if v, ok := t.(logic.Var); ok {
				if _, bound := env[string(v)]; bound {
					continue
				}
				anyVar = true
				if !seen[string(v)] {
					seen[string(v)] = true
					counts[string(v)]++
				}
			}
		}
	}
	if !anyVar {
		return "", true
	}
	// Deterministic choice: smallest qualifying name.
	var names []string
	for v, c := range counts {
		if c == len(atoms) {
			names = append(names, v)
		}
	}
	if len(names) == 0 {
		return "", false
	}
	sort.Strings(names)
	return names[0], false
}

// components splits atoms into connected components linked by shared
// unbound variables.
func components(atoms []logic.Atom, env map[string]int) [][]logic.Atom {
	n := len(atoms)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	byVar := map[string]int{}
	for i, a := range atoms {
		for _, t := range a.Args {
			v, ok := t.(logic.Var)
			if !ok {
				continue
			}
			if _, bound := env[string(v)]; bound {
				continue
			}
			if j, seen := byVar[string(v)]; seen {
				union(i, j)
			} else {
				byVar[string(v)] = i
			}
		}
	}
	groups := map[int][]logic.Atom{}
	var order []int
	for i, a := range atoms {
		r := find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], a)
	}
	out := make([][]logic.Atom, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

func groundAtom(db *unreliable.DB, a logic.Atom, env map[string]int) (rel.GroundAtom, error) {
	tup := make(rel.Tuple, len(a.Args))
	for i, t := range a.Args {
		switch u := t.(type) {
		case logic.Var:
			e, ok := env[string(u)]
			if !ok {
				return rel.GroundAtom{}, fmt.Errorf("safeplan: unbound variable %q", u)
			}
			tup[i] = e
		case logic.Elem:
			e := int(u)
			if e < 0 || e >= db.A.N {
				return rel.GroundAtom{}, fmt.Errorf("safeplan: element %d outside universe [0,%d)", e, db.A.N)
			}
			tup[i] = e
		default:
			return rel.GroundAtom{}, fmt.Errorf("safeplan: unsupported term %v", t)
		}
	}
	return rel.GroundAtom{Rel: a.Rel, Args: tup}, nil
}

func atomsString(atoms []logic.Atom) string {
	parts := make([]string, len(atoms))
	for i, a := range atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}
