package unreliable

import (
	"bytes"
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"qrel/internal/rel"
)

const sampleDB = `
# example unreliable database
universe 5
rel E/2
rel S/1
const c 0
E 0 1
E 1 2 err 1/10
S 3 absent err 1/2
S 4 err 0.25
`

func TestParseDBBasic(t *testing.T) {
	d, err := ParseDB(strings.NewReader(sampleDB))
	if err != nil {
		t.Fatal(err)
	}
	if d.A.N != 5 {
		t.Errorf("universe %d", d.A.N)
	}
	if !d.A.Holds("E", rel.Tuple{0, 1}) || !d.A.Holds("E", rel.Tuple{1, 2}) {
		t.Error("facts missing")
	}
	if d.A.Holds("S", rel.Tuple{3}) {
		t.Error("absent atom added as fact")
	}
	if !d.A.Holds("S", rel.Tuple{4}) {
		t.Error("S 4 missing")
	}
	if d.A.Consts["c"] != 0 {
		t.Error("constant not set")
	}
	if got := d.ErrorProb(atomE(1, 2)); got.Cmp(big.NewRat(1, 10)) != 0 {
		t.Errorf("err(E 1 2) = %v", got)
	}
	if got := d.ErrorProb(atomS(3)); got.Cmp(big.NewRat(1, 2)) != 0 {
		t.Errorf("err(S 3) = %v", got)
	}
	if got := d.ErrorProb(atomS(4)); got.Cmp(big.NewRat(1, 4)) != 0 {
		t.Errorf("err(S 4) = %v (decimal probability)", got)
	}
	if got := d.ErrorProb(atomE(0, 1)); got.Sign() != 0 {
		t.Errorf("err(E 0 1) = %v, want 0", got)
	}
}

func TestParseDBErrors(t *testing.T) {
	cases := map[string]string{
		"no universe":         "rel S/1\nS 0\n",
		"dup universe":        "universe 2\nuniverse 3\n",
		"bad universe":        "universe x\n",
		"bad rel":             "universe 2\nrel S\n",
		"bad arity":           "universe 2\nrel S/x\n",
		"dup rel":             "universe 2\nrel S/1\nrel S/2\n",
		"unknown rel fact":    "universe 2\nX 0\n",
		"short fact":          "universe 2\nrel E/2\nE 0\n",
		"bad element":         "universe 2\nrel S/1\nS x\n",
		"element range":       "universe 2\nrel S/1\nS 5\n",
		"bad prob":            "universe 2\nrel S/1\nS 0 err nope\n",
		"prob out of range":   "universe 2\nrel S/1\nS 0 err 3/2\n",
		"trailing tokens":     "universe 2\nrel S/1\nS 0 extra\n",
		"rel after facts":     "universe 2\nrel S/1\nS 0\nrel T/1\n",
		"const after facts":   "universe 2\nrel S/1\nS 0\nconst c 0\n",
		"bad const":           "universe 2\nconst c x\nrel S/1\n",
		"universe size limit": "universe -1\n",
	}
	for name, src := range cases {
		if _, err := ParseDB(strings.NewReader(src)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 25; iter++ {
		d := testDB(rng, 4, 1+rng.Intn(5))
		var buf bytes.Buffer
		if err := WriteDB(&buf, d); err != nil {
			t.Fatal(err)
		}
		back, err := ParseDB(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("iter %d: reparse: %v\n%s", iter, err, buf.String())
		}
		if !back.A.Equal(d.A) {
			t.Fatalf("iter %d: observed database changed:\n%v\n%v", iter, d.A, back.A)
		}
		// Same error probabilities on every ground atom.
		d.A.ForEachGroundAtom(func(a rel.GroundAtom) bool {
			if d.ErrorProb(a).Cmp(back.ErrorProb(a)) != 0 {
				t.Fatalf("iter %d: err(%v) changed", iter, a)
			}
			return true
		})
	}
}

func TestCodecSureFlipRoundTrip(t *testing.T) {
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(2, voc)
	d := New(s)
	d.MustSetError(atomS(1), big.NewRat(1, 1))
	var buf bytes.Buffer
	if err := WriteDB(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ParseDB(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := back.ErrorProb(atomS(1)); got.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("mu=1 atom lost: %v", got)
	}
}
