package unreliable

import (
	"math/big"
	"math/rand"
	"testing"

	"qrel/internal/rel"
)

// testDB builds a small unreliable database over E/2, S/1 with the
// given universe size and a few random facts and error probabilities.
func testDB(rng *rand.Rand, n, uncertain int) *DB {
	voc := rel.MustVocabulary(rel.RelSym{Name: "E", Arity: 2}, rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(n, voc)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			s.MustAdd("E", rng.Intn(n), rng.Intn(n))
		}
		if rng.Intn(2) == 0 {
			s.MustAdd("S", rng.Intn(n))
		}
	}
	d := New(s)
	for len(d.UncertainAtoms()) < uncertain {
		var atom rel.GroundAtom
		if rng.Intn(2) == 0 {
			atom = rel.GroundAtom{Rel: "E", Args: rel.Tuple{rng.Intn(n), rng.Intn(n)}}
		} else {
			atom = rel.GroundAtom{Rel: "S", Args: rel.Tuple{rng.Intn(n)}}
		}
		d.MustSetError(atom, big.NewRat(int64(1+rng.Intn(9)), 10))
	}
	return d
}

func atomE(i, j int) rel.GroundAtom { return rel.GroundAtom{Rel: "E", Args: rel.Tuple{i, j}} }
func atomS(i int) rel.GroundAtom    { return rel.GroundAtom{Rel: "S", Args: rel.Tuple{i}} }

func TestSetErrorValidation(t *testing.T) {
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	d := New(rel.MustStructure(3, voc))
	if err := d.SetError(rel.GroundAtom{Rel: "X", Args: rel.Tuple{0}}, big.NewRat(1, 2)); err == nil {
		t.Error("unknown relation accepted")
	}
	if err := d.SetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{0, 1}}, big.NewRat(1, 2)); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := d.SetError(atomS(9), big.NewRat(1, 2)); err == nil {
		t.Error("out-of-universe atom accepted")
	}
	if err := d.SetError(atomS(0), big.NewRat(3, 2)); err == nil {
		t.Error("probability > 1 accepted")
	}
	if err := d.SetError(atomS(0), big.NewRat(-1, 2)); err == nil {
		t.Error("negative probability accepted")
	}
	if err := d.SetError(atomS(0), nil); err == nil {
		t.Error("nil probability accepted")
	}
	// Setting zero removes.
	d.MustSetError(atomS(0), big.NewRat(1, 2))
	if d.NumUncertain() != 1 {
		t.Fatal("uncertain count wrong")
	}
	d.MustSetError(atomS(0), new(big.Rat))
	if d.NumUncertain() != 0 {
		t.Error("zero probability did not remove atom")
	}
}

func TestNuAtom(t *testing.T) {
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(3, voc)
	s.MustAdd("S", 0)
	d := New(s)
	d.MustSetError(atomS(0), big.NewRat(1, 10))
	d.MustSetError(atomS(1), big.NewRat(1, 4))
	// Present atom: nu = 1 - mu.
	if got := d.NuAtom(atomS(0)); got.Cmp(big.NewRat(9, 10)) != 0 {
		t.Errorf("nu(S0) = %v, want 9/10", got)
	}
	// Absent atom: nu = mu.
	if got := d.NuAtom(atomS(1)); got.Cmp(big.NewRat(1, 4)) != 0 {
		t.Errorf("nu(S1) = %v, want 1/4", got)
	}
	// Unmentioned absent atom: nu = 0.
	if got := d.NuAtom(atomS(2)); got.Sign() != 0 {
		t.Errorf("nu(S2) = %v, want 0", got)
	}
}

func TestWorldEnumerationSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 20; iter++ {
		d := testDB(rng, 3, 1+rng.Intn(6))
		if err := d.ValidateWorldProbabilities(10); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

func TestWorldProbMatchesNuWorld(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := testDB(rng, 3, 4)
	err := d.ForEachWorld(10, func(b *rel.Structure, nu *big.Rat) bool {
		direct, err := d.NuWorld(b)
		if err != nil {
			t.Fatal(err)
		}
		if direct.Cmp(nu) != 0 {
			t.Fatalf("NuWorld %v != enumeration prob %v", direct, nu)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNuWorldZeroCases(t *testing.T) {
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(2, voc)
	s.MustAdd("S", 0)
	d := New(s)
	d.MustSetError(atomS(1), big.NewRat(1, 2))
	// World differing on the certain atom S(0) has probability zero.
	b := s.Clone()
	b.Rel("S").Toggle(rel.Tuple{0})
	nu, err := d.NuWorld(b)
	if err != nil {
		t.Fatal(err)
	}
	if nu.Sign() != 0 {
		t.Errorf("nu of impossible world = %v, want 0", nu)
	}
	// Mismatched universe errors.
	if _, err := d.NuWorld(rel.MustStructure(3, voc)); err == nil {
		t.Error("universe mismatch accepted")
	}
}

func TestSureFlips(t *testing.T) {
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(2, voc)
	s.MustAdd("S", 0)
	d := New(s)
	d.MustSetError(atomS(0), big.NewRat(1, 1)) // certainly wrong
	if d.NumUncertain() != 0 || len(d.SureFlips()) != 1 {
		t.Fatal("mu=1 atom not classified as sure flip")
	}
	w := d.World(0)
	if w.Holds("S", rel.Tuple{0}) {
		t.Error("sure flip not applied in world")
	}
	// Exactly one possible world.
	if d.WorldCount().Int64() != 1 {
		t.Errorf("WorldCount = %v, want 1", d.WorldCount())
	}
	// Sampling also applies it.
	b := d.SampleWorld(rand.New(rand.NewSource(1)))
	if b.Holds("S", rel.Tuple{0}) {
		t.Error("sure flip not applied in sample")
	}
}

func TestEnumerationBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := testDB(rng, 4, 8)
	if err := d.ForEachWorld(4, func(*rel.Structure, *big.Rat) bool { return true }); err == nil {
		t.Error("budget not enforced")
	}
}

func TestGClearsAllWorlds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 15; iter++ {
		d := testDB(rng, 3, 1+rng.Intn(5))
		g := d.G()
		err := d.ForEachWorld(10, func(_ *rel.Structure, nu *big.Rat) bool {
			x := new(big.Rat).Mul(nu, new(big.Rat).SetInt(g))
			if !x.IsInt() {
				t.Fatalf("iter %d: nu*g = %v not integral (g=%v)", iter, x, g)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestGPaperLCMErratum(t *testing.T) {
	// Two atoms with probability 1/2: the paper's gcd-loop gives g = 2,
	// but nu(B) = 1/4 so the defining property nu(B)·g ∈ ℕ fails.
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	d := New(rel.MustStructure(2, voc))
	d.MustSetError(atomS(0), big.NewRat(1, 2))
	d.MustSetError(atomS(1), big.NewRat(1, 2))
	lcm := d.GPaperLCM()
	if lcm.Int64() != 2 {
		t.Fatalf("paper's algorithm returned %v, expected lcm 2", lcm)
	}
	nu := d.WorldProb(0) // 1/4
	x := new(big.Rat).Mul(nu, new(big.Rat).SetInt(lcm))
	if x.IsInt() {
		t.Fatal("expected the paper's g to fail on this instance")
	}
	// The corrected g works.
	g := d.G()
	if g.Int64() != 4 {
		t.Fatalf("corrected g = %v, want 4", g)
	}
	y := new(big.Rat).Mul(nu, new(big.Rat).SetInt(g))
	if !y.IsInt() {
		t.Fatal("corrected g failed")
	}
}

func TestGPaperLCMAgreesOnCoprimeDenominators(t *testing.T) {
	// With a single uncertain atom (or coprime denominators and one
	// atom per world factor) lcm and product agree.
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	d := New(rel.MustStructure(1, voc))
	d.MustSetError(atomS(0), big.NewRat(2, 7))
	if d.G().Cmp(d.GPaperLCM()) != 0 {
		t.Error("g variants disagree on single atom")
	}
}

func TestSampleWorldDistribution(t *testing.T) {
	// Single atom with mu = 1/4: flip frequency should be near 1/4.
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(1, voc)
	s.MustAdd("S", 0)
	d := New(s)
	d.MustSetError(atomS(0), big.NewRat(1, 4))
	rng := rand.New(rand.NewSource(5))
	flips := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if !d.SampleWorld(rng).Holds("S", rel.Tuple{0}) {
			flips++
		}
	}
	freq := float64(flips) / trials
	if freq < 0.22 || freq > 0.28 {
		t.Errorf("flip frequency %.4f far from 0.25", freq)
	}
}

func TestWorldMaskRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := testDB(rng, 3, 3)
	atoms := d.UncertainAtoms()
	for mask := uint64(0); mask < 8; mask++ {
		w := d.World(mask)
		for i, a := range atoms {
			flipped := mask&(1<<uint(i)) != 0
			if (w.Holds(a.Rel, a.Args) != d.A.Holds(a.Rel, a.Args)) != flipped {
				t.Fatalf("mask %d atom %v flip state wrong", mask, a)
			}
		}
	}
}

func TestIsPositiveOnly(t *testing.T) {
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(2, voc)
	s.MustAdd("S", 0)
	d := New(s)
	d.MustSetError(atomS(0), big.NewRat(1, 2))
	if !d.IsPositiveOnly() {
		t.Error("errors on present facts only should be positive-only")
	}
	d.MustSetError(atomS(1), big.NewRat(1, 2))
	if d.IsPositiveOnly() {
		t.Error("error on absent atom should break positive-only")
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := testDB(rng, 3, 2)
	c := d.Clone()
	if c.NumUncertain() != d.NumUncertain() {
		t.Fatal("clone lost uncertain atoms")
	}
	c.MustSetError(atomS(0), big.NewRat(1, 3))
	if d.ErrorProb(atomS(0)).Cmp(c.ErrorProb(atomS(0))) == 0 {
		t.Error("clone shares mu storage")
	}
}

func TestFromProbabilitiesMarginals(t *testing.T) {
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	nu := map[rel.AtomKey]*big.Rat{
		atomS(0).Key(): big.NewRat(3, 4),
		atomS(1).Key(): big.NewRat(1, 5),
		atomS(2).Key(): big.NewRat(1, 2),
	}
	d, err := FromProbabilities(4, voc, nu)
	if err != nil {
		t.Fatal(err)
	}
	// Observed database is the modal world.
	if !d.A.Holds("S", rel.Tuple{0}) || d.A.Holds("S", rel.Tuple{1}) || !d.A.Holds("S", rel.Tuple{2}) {
		t.Errorf("observed database wrong: %v", d.A)
	}
	// Marginals: Pr[atom holds] computed by enumeration equals nu.
	for k, want := range nu {
		atom := k.Atom()
		total := new(big.Rat)
		d.ForEachWorld(10, func(b *rel.Structure, p *big.Rat) bool {
			if b.Holds(atom.Rel, atom.Args) {
				total.Add(total, p)
			}
			return true
		})
		if total.Cmp(want) != 0 {
			t.Errorf("marginal of %v = %v, want %v", atom, total, want)
		}
	}
	// Round trip through Probabilities.
	back := d.Probabilities()
	for k, want := range nu {
		if got, ok := back[k]; !ok || got.Cmp(want) != 0 {
			t.Errorf("Probabilities()[%v] = %v, want %v", k.Atom(), got, want)
		}
	}
	// Validation of inputs.
	bad := map[rel.AtomKey]*big.Rat{atomS(0).Key(): big.NewRat(7, 4)}
	if _, err := FromProbabilities(4, voc, bad); err == nil {
		t.Error("out-of-range nu accepted")
	}
}

// TestSampleWorldIntoMatchesSampleWorld pins the zero-allocation
// sampler to the allocating one: identical RNG consumption, identical
// worlds, draw after draw.
func TestSampleWorldIntoMatchesSampleWorld(t *testing.T) {
	d := testDB(rand.New(rand.NewSource(31)), 6, 10)
	ra := rand.New(rand.NewSource(77))
	rb := rand.New(rand.NewSource(77))
	buf := d.NewWorldBuf()
	for i := 0; i < 200; i++ {
		want := d.SampleWorld(ra)
		got := d.SampleWorldInto(rb, buf)
		if !want.Equal(got) {
			t.Fatalf("draw %d: buffered world differs from cloned world", i)
		}
	}
	// The streams stayed in lockstep.
	if ra.Uint64() != rb.Uint64() {
		t.Fatal("samplers consumed different amounts of randomness")
	}
}

// TestSampleWorldIntoAllocFree requires the steady-state draw to be
// allocation-free — the whole point of the buffer.
func TestSampleWorldIntoAllocFree(t *testing.T) {
	d := testDB(rand.New(rand.NewSource(32)), 6, 10)
	rng := rand.New(rand.NewSource(78))
	buf := d.NewWorldBuf()
	d.SampleWorldInto(rng, buf) // warm up lazy state
	allocs := testing.AllocsPerRun(100, func() {
		d.SampleWorldInto(rng, buf)
	})
	if allocs > 0 {
		t.Errorf("SampleWorldInto allocates %v objects per draw, want 0", allocs)
	}
}
