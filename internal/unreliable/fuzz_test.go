package unreliable

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseDB checks that the database codec never panics and that
// anything that parses also writes back out and reparses to an
// equivalent database.
func FuzzParseDB(f *testing.F) {
	seeds := []string{
		sampleDB,
		"universe 2\nrel S/1\nS 0 err 1/2\n",
		"universe 0\n",
		"universe 3\nrel E/2\nE 0 1 absent err 1\n",
		"rel S/1\n",
		"universe x\n",
		"universe 2\nrel S/1\nS 0 err 3/2\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		db, err := ParseDB(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteDB(&buf, db); err != nil {
			t.Fatalf("WriteDB of parsed input failed: %v", err)
		}
		back, err := ParseDB(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip does not reparse: %v\n%s", err, buf.String())
		}
		if !back.A.Equal(db.A) {
			t.Fatal("round trip changed the observed database")
		}
	})
}
