// Package unreliable implements the paper's probabilistic model of
// unreliable databases (Definition 2.1): a pair D = (A, mu) of an
// observed finite relational structure A and an error function mu
// assigning to each ground atom R(ā) the probability that its truth
// value in A is wrong. The package provides the induced probability
// space Omega(D) over possible worlds: exact world probabilities nu(B),
// enumeration, sampling, the normalizing integer g used by the FP^#P
// algorithm of Theorem 4.2, and a text codec.
package unreliable

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"sort"

	"qrel/internal/rel"
)

var (
	ratZero = new(big.Rat)
	ratOne  = big.NewRat(1, 1)
	ratHalf = big.NewRat(1, 2)
)

// DB is an unreliable database (A, mu). Atoms without an explicit error
// probability are certain (mu = 0). Atoms with mu = 1 are certainly
// wrong and flip deterministically in every possible world.
type DB struct {
	// A is the observed database.
	A *rel.Structure

	mu map[rel.AtomKey]*big.Rat

	// caches, rebuilt lazily after mutation
	dirty     bool
	uncertain []entry // atoms with 0 < mu < 1, in canonical order
	sure      []entry // atoms with mu = 1 (deterministic flips)
}

type entry struct {
	atom rel.GroundAtom
	mu   *big.Rat
	muF  float64 // float approximation, for sampling
}

// New wraps an observed structure as an unreliable database with all
// error probabilities zero. The structure is used by reference; callers
// must not mutate it afterwards.
func New(a *rel.Structure) *DB {
	return &DB{A: a, mu: map[rel.AtomKey]*big.Rat{}}
}

// SetError sets mu(atom) = p. It validates that the atom is well formed
// over A's vocabulary and universe and that p ∈ [0, 1]. Setting 0
// removes the atom from the uncertain set.
func (d *DB) SetError(atom rel.GroundAtom, p *big.Rat) error {
	r := d.A.Rel(atom.Rel)
	if r == nil {
		return fmt.Errorf("unreliable: unknown relation %q", atom.Rel)
	}
	if r.Arity != len(atom.Args) {
		return fmt.Errorf("unreliable: atom %v has arity %d, relation expects %d", atom, len(atom.Args), r.Arity)
	}
	for _, e := range atom.Args {
		if e < 0 || e >= d.A.N {
			return fmt.Errorf("unreliable: atom %v mentions element outside universe [0,%d)", atom, d.A.N)
		}
	}
	if p == nil || p.Cmp(ratZero) < 0 || p.Cmp(ratOne) > 0 {
		return fmt.Errorf("unreliable: error probability %v outside [0,1]", p)
	}
	k := atom.Key()
	if p.Sign() == 0 {
		delete(d.mu, k)
	} else {
		d.mu[k] = new(big.Rat).Set(p)
	}
	d.dirty = true
	return nil
}

// MustSetError is SetError that panics on error.
func (d *DB) MustSetError(atom rel.GroundAtom, p *big.Rat) {
	if err := d.SetError(atom, p); err != nil {
		panic(err)
	}
}

// ErrorProb returns mu(atom); atoms never set have mu = 0.
func (d *DB) ErrorProb(atom rel.GroundAtom) *big.Rat {
	if p, ok := d.mu[atom.Key()]; ok {
		return new(big.Rat).Set(p)
	}
	return new(big.Rat)
}

// NuAtom returns nu(atom), the probability that the atom holds in the
// actual database: 1 − mu if A ⊨ atom, mu otherwise (Section 2).
func (d *DB) NuAtom(atom rel.GroundAtom) *big.Rat {
	mu := d.ErrorProb(atom)
	if d.A.Holds(atom.Rel, atom.Args) {
		return mu.Sub(ratOne, mu)
	}
	return mu
}

// refresh rebuilds the uncertain/sure caches in canonical order
// (relation name, then tuple key).
func (d *DB) refresh() {
	if !d.dirty {
		return
	}
	d.uncertain = d.uncertain[:0]
	d.sure = d.sure[:0]
	keys := make([]rel.AtomKey, 0, len(d.mu))
	for k := range d.mu {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Rel != keys[j].Rel {
			return keys[i].Rel < keys[j].Rel
		}
		return keys[i].Tup < keys[j].Tup
	})
	for _, k := range keys {
		p := d.mu[k]
		e := entry{atom: k.Atom(), mu: p}
		e.muF, _ = p.Float64()
		if p.Cmp(ratOne) == 0 {
			d.sure = append(d.sure, e)
		} else {
			d.uncertain = append(d.uncertain, e)
		}
	}
	d.dirty = false
}

// UncertainAtoms returns the atoms with 0 < mu < 1 in canonical order.
// The possible worlds of Omega(D) with nonzero probability are exactly
// the 2^u flips of these atoms (after the deterministic mu = 1 flips).
func (d *DB) UncertainAtoms() []rel.GroundAtom {
	d.refresh()
	out := make([]rel.GroundAtom, len(d.uncertain))
	for i, e := range d.uncertain {
		out[i] = e.atom
	}
	return out
}

// SureFlips returns the atoms with mu = 1.
func (d *DB) SureFlips() []rel.GroundAtom {
	d.refresh()
	out := make([]rel.GroundAtom, len(d.sure))
	for i, e := range d.sure {
		out[i] = e.atom
	}
	return out
}

// NumUncertain returns the number of atoms with 0 < mu < 1.
func (d *DB) NumUncertain() int {
	d.refresh()
	return len(d.uncertain)
}

// UncertainMuF returns the float64 flip probabilities of the
// uncertain atoms in the same canonical order as UncertainAtoms —
// exactly the values SampleWorldInto compares its Float64 draws
// against, so a batched sampler using them reproduces the world
// stream bit-for-bit.
func (d *DB) UncertainMuF() []float64 {
	d.refresh()
	out := make([]float64, len(d.uncertain))
	for i, e := range d.uncertain {
		out[i] = e.muF
	}
	return out
}

// WorldCount returns |{B : nu(B) > 0}| = 2^u.
func (d *DB) WorldCount() *big.Int {
	d.refresh()
	return new(big.Int).Lsh(big.NewInt(1), uint(len(d.uncertain)))
}

// IsPositiveOnly reports whether the database fits de Rougemont's
// restricted model (Section 3 Remark): errors only on positive data,
// i.e. mu(Rā) > 0 implies A ⊨ Rā.
func (d *DB) IsPositiveOnly() bool {
	for k, p := range d.mu {
		if p.Sign() > 0 {
			a := k.Atom()
			if !d.A.Holds(a.Rel, a.Args) {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy of the unreliable database.
func (d *DB) Clone() *DB {
	c := New(d.A.Clone())
	for k, p := range d.mu {
		c.mu[k] = new(big.Rat).Set(p)
	}
	c.dirty = true
	return c
}

// World materializes the possible world identified by mask: bit i of
// mask flips uncertain atom i (in canonical order), and all mu = 1
// atoms are flipped unconditionally.
func (d *DB) World(mask uint64) *rel.Structure {
	d.refresh()
	b := d.A.Clone()
	for _, e := range d.sure {
		b.Rel(e.atom.Rel).Toggle(e.atom.Args)
	}
	for i, e := range d.uncertain {
		if mask&(1<<uint(i)) != 0 {
			b.Rel(e.atom.Rel).Toggle(e.atom.Args)
		}
	}
	return b
}

// WorldProb returns the probability of the world identified by mask:
// the product over uncertain atoms of mu (flipped) or 1 − mu (kept).
func (d *DB) WorldProb(mask uint64) *big.Rat {
	d.refresh()
	p := new(big.Rat).Set(ratOne)
	for i, e := range d.uncertain {
		if mask&(1<<uint(i)) != 0 {
			p.Mul(p, e.mu)
		} else {
			p.Mul(p, new(big.Rat).Sub(ratOne, e.mu))
		}
	}
	return p
}

// MaxEnumAtoms is the hard cap on uncertain atoms for exact world
// enumeration (2^u worlds).
const MaxEnumAtoms = 30

// ErrEnumBudget is wrapped in errors returned when the uncertain-atom
// count exceeds an enumeration budget; callers use it to distinguish
// "instance too large for this engine" from evaluation failures.
var ErrEnumBudget = fmt.Errorf("unreliable: uncertain atoms exceed enumeration budget")

// ForEachWorld enumerates the possible worlds B ∈ Omega(D) with their
// probabilities nu(B), calling fn for each; fn returning false stops the
// enumeration. The structure passed to fn is freshly cloned per world
// and may be retained. budget caps the number of uncertain atoms (u ≤
// budget); prefer small budgets — the enumeration visits 2^u worlds.
func (d *DB) ForEachWorld(budget int, fn func(b *rel.Structure, nu *big.Rat) bool) error {
	return d.ForEachWorldCtx(context.Background(), budget, fn)
}

// ForEachWorldCtx is ForEachWorld with cooperative cancellation: the
// enumeration checks ctx between worlds and returns ctx's error when it
// is canceled or its deadline passes. This is the inner loop behind
// every exact enumeration engine, so a cancellation here propagates a
// bounded-latency stop through the whole exact stack.
func (d *DB) ForEachWorldCtx(ctx context.Context, budget int, fn func(b *rel.Structure, nu *big.Rat) bool) error {
	d.refresh()
	u := len(d.uncertain)
	if u > budget || u > MaxEnumAtoms {
		return fmt.Errorf("%w: %d uncertain atoms, budget %d", ErrEnumBudget, u, budget)
	}
	for mask := uint64(0); mask < uint64(1)<<uint(u); mask++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !fn(d.World(mask), d.WorldProb(mask)) {
			return nil
		}
	}
	return nil
}

// NuWorld returns nu(B), the probability that the actual database is B
// (Section 2): the product over all ground atoms of nu(literal as it
// holds in B). It is zero whenever B disagrees with the observed
// database on a certain atom or agrees on a mu = 1 atom. B must have
// the same universe size; the vocabulary is taken from A.
func (d *DB) NuWorld(b *rel.Structure) (*big.Rat, error) {
	if b.N != d.A.N {
		return nil, fmt.Errorf("unreliable: world has universe %d, observed %d", b.N, d.A.N)
	}
	p := new(big.Rat).Set(ratOne)
	var err error
	d.A.ForEachGroundAtom(func(a rel.GroundAtom) bool {
		br := b.Rel(a.Rel)
		if br == nil {
			err = fmt.Errorf("unreliable: world lacks relation %q", a.Rel)
			return false
		}
		inA := d.A.Holds(a.Rel, a.Args)
		inB := br.Contains(a.Args)
		mu := d.ErrorProb(a)
		if inA == inB {
			p.Mul(p, new(big.Rat).Sub(ratOne, mu))
		} else {
			p.Mul(p, mu)
		}
		if p.Sign() == 0 {
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// SampleWorld draws a random world from Omega(D) using float64
// approximations of the flip probabilities.
func (d *DB) SampleWorld(rng *rand.Rand) *rel.Structure {
	d.refresh()
	b := d.A.Clone()
	for _, e := range d.sure {
		b.Rel(e.atom.Rel).Toggle(e.atom.Args)
	}
	for _, e := range d.uncertain {
		if rng.Float64() < e.muF {
			b.Rel(e.atom.Rel).Toggle(e.atom.Args)
		}
	}
	return b
}

// WorldBuf is a reusable scratch world for allocation-free sampling:
// one structure is cloned when the buffer is created and every
// subsequent draw only undoes the previous draw's flips and applies the
// new ones. A buffer belongs to one sampling goroutine (a "lane") and
// is invalidated by any mutation of the database it was created from.
type WorldBuf struct {
	d     *DB
	b     *rel.Structure
	flips []int // indices into d.uncertain currently toggled in b
}

// NewWorldBuf clones the observed structure once (with the mu = 1
// flips applied) and returns a buffer that SampleWorldInto can reuse
// for every draw of a sampling loop.
func (d *DB) NewWorldBuf() *WorldBuf {
	d.refresh()
	b := d.A.Clone()
	for _, e := range d.sure {
		b.Rel(e.atom.Rel).Toggle(e.atom.Args)
	}
	return &WorldBuf{d: d, b: b, flips: make([]int, 0, len(d.uncertain))}
}

// Reset undoes the previous draw's flips, restoring the buffer to the
// observed database with the deterministic mu = 1 flips applied.
func (w *WorldBuf) Reset() {
	for _, i := range w.flips {
		e := &w.d.uncertain[i]
		w.b.Rel(e.atom.Rel).Toggle(e.atom.Args)
	}
	w.flips = w.flips[:0]
}

// ToggleUncertain flips uncertain atom i (canonical order) in the
// buffer and records it for the next Reset.
func (w *WorldBuf) ToggleUncertain(i int) {
	e := &w.d.uncertain[i]
	w.b.Rel(e.atom.Rel).Toggle(e.atom.Args)
	w.flips = append(w.flips, i)
}

// World returns the buffered structure. It is valid until the next
// Reset/SampleWorldInto on the buffer and must not be retained or
// mutated by the caller.
func (w *WorldBuf) World() *rel.Structure { return w.b }

// SampleWorldInto is SampleWorld without the per-draw clone: it draws a
// random world from Omega(D) into buf and returns the buffered
// structure. The RNG consumption is identical to SampleWorld (one
// Float64 per uncertain atom, in canonical order), so the two samplers
// produce the same worlds from the same stream. The returned structure
// is only valid until the next draw into buf.
func (d *DB) SampleWorldInto(rng *rand.Rand, buf *WorldBuf) *rel.Structure {
	d.refresh()
	buf.Reset()
	for i := range d.uncertain {
		if rng.Float64() < d.uncertain[i].muF {
			buf.ToggleUncertain(i)
		}
	}
	return buf.b
}

// G returns the least-denominator normalizer used by the FP^#P
// algorithm of Theorem 4.2: an integer g such that nu(B)·g ∈ ℕ for
// every world B. Since nu(B) is a product of per-atom factors with
// (reduced) denominators dividing q_atom, the product of the q_atom
// clears every world probability.
//
// NOTE (erratum): the paper computes g by iterated gcd steps, which
// yields the LCM of the denominators. The lcm does not satisfy
// nu(B)·g ∈ ℕ when several atoms share denominator factors — with two
// atoms of probability 1/2, nu(B) = 1/4 but lcm = 2. GPaperLCM
// implements the paper's literal algorithm for comparison; G implements
// the corrected product. See EXPERIMENTS.md (E3).
func (d *DB) G() *big.Int {
	d.refresh()
	g := big.NewInt(1)
	for _, e := range d.uncertain {
		g.Mul(g, e.mu.Denom())
	}
	return g
}

// GPaperLCM runs the paper's literal gcd-loop over the denominators of
// the nu(Rā), producing their least common multiple. Kept for the E3
// experiment, which demonstrates that it can fail the defining property
// of g. Use G for correct results.
func (d *DB) GPaperLCM() *big.Int {
	d.refresh()
	g := big.NewInt(1)
	tmp := new(big.Int)
	for _, e := range d.uncertain {
		den := e.mu.Denom()
		b := new(big.Int).GCD(nil, nil, g, den)
		if b.Cmp(den) == 0 {
			continue // d is a factor of g'
		}
		g.Mul(g, tmp.Div(den, b))
	}
	return g
}

// ValidateWorldProbabilities checks Σ_B nu(B) = 1 by enumeration; a
// sanity invariant used in tests and the experiment harness.
func (d *DB) ValidateWorldProbabilities(budget int) error {
	total := new(big.Rat)
	err := d.ForEachWorld(budget, func(_ *rel.Structure, nu *big.Rat) bool {
		total.Add(total, nu)
		return true
	})
	if err != nil {
		return err
	}
	if total.Cmp(ratOne) != 0 {
		return fmt.Errorf("unreliable: world probabilities sum to %v, want 1", total)
	}
	return nil
}
