package unreliable

import (
	"math/big"
	"math/rand"
	"testing"

	"qrel/internal/rel"
)

func TestConditionFixesAtom(t *testing.T) {
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(2, voc)
	s.MustAdd("S", 0)
	d := New(s)
	d.MustSetError(atomS(0), big.NewRat(1, 4))
	d.MustSetError(atomS(1), big.NewRat(1, 3))

	onTrue, err := d.Condition(atomS(0), true)
	if err != nil {
		t.Fatal(err)
	}
	if onTrue.NuAtom(atomS(0)).Cmp(big.NewRat(1, 1)) != 0 {
		t.Error("conditioned-true atom not certain")
	}
	// Other atoms untouched (independence).
	if onTrue.ErrorProb(atomS(1)).Cmp(big.NewRat(1, 3)) != 0 {
		t.Error("conditioning leaked to other atoms")
	}
	onFalse, err := d.Condition(atomS(0), false)
	if err != nil {
		t.Fatal(err)
	}
	if onFalse.NuAtom(atomS(0)).Sign() != 0 {
		t.Error("conditioned-false atom not certainly absent")
	}
	// mu = 1 branch: the observed fact is certainly wrong.
	if onFalse.ErrorProb(atomS(0)).Cmp(big.NewRat(1, 1)) != 0 {
		t.Error("conditioning false on an observed fact should set mu = 1")
	}
}

func TestConditionImpossibleEvent(t *testing.T) {
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(2, voc)
	s.MustAdd("S", 0)
	d := New(s) // no uncertainty: S(0) certainly true, S(1) certainly false
	if _, err := d.Condition(atomS(0), false); err == nil {
		t.Error("conditioning on impossible event accepted")
	}
	if _, err := d.Condition(atomS(1), true); err == nil {
		t.Error("conditioning on impossible event accepted")
	}
	wt, wf := d.AtomInfluence(atomS(0))
	if wt == nil || wf != nil {
		t.Error("AtomInfluence branches wrong for certain atom")
	}
}

func TestConditionLawOfTotalProbability(t *testing.T) {
	// Pr[event] = nu(a)·Pr[event | a] + (1−nu(a))·Pr[event | ¬a], checked
	// by enumeration on random databases and a random target event.
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 20; iter++ {
		d := testDB(rng, 3, 3)
		atoms := d.UncertainAtoms()
		a := atoms[rng.Intn(len(atoms))]
		// Event: some other fixed atom holds in the world.
		target := atoms[rng.Intn(len(atoms))]
		prEvent := func(db *DB) *big.Rat {
			total := new(big.Rat)
			db.ForEachWorld(12, func(b *rel.Structure, nu *big.Rat) bool {
				if b.Holds(target.Rel, target.Args) {
					total.Add(total, nu)
				}
				return true
			})
			return total
		}
		nuA := d.NuAtom(a)
		whenTrue, whenFalse := d.AtomInfluence(a)
		if whenTrue == nil || whenFalse == nil {
			t.Fatal("uncertain atom should have both branches")
		}
		lhs := prEvent(d)
		rhs := new(big.Rat).Mul(nuA, prEvent(whenTrue))
		rhs.Add(rhs, new(big.Rat).Mul(new(big.Rat).Sub(big.NewRat(1, 1), nuA), prEvent(whenFalse)))
		if lhs.Cmp(rhs) != 0 {
			t.Fatalf("iter %d: total probability broken: %v vs %v", iter, lhs, rhs)
		}
	}
}

func TestMostLikelyWorld(t *testing.T) {
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(3, voc)
	s.MustAdd("S", 0)
	d := New(s)
	d.MustSetError(atomS(0), big.NewRat(1, 4)) // keep (mu < 1/2)
	d.MustSetError(atomS(1), big.NewRat(2, 3)) // flip (mu > 1/2)
	d.MustSetError(atomS(2), big.NewRat(1, 1)) // certain flip
	w, p := d.MostLikelyWorld()
	if !w.Holds("S", rel.Tuple{0}) {
		t.Error("low-error fact should be kept")
	}
	if !w.Holds("S", rel.Tuple{1}) {
		t.Error("high-error absent atom should flip in")
	}
	if !w.Holds("S", rel.Tuple{2}) {
		t.Error("mu=1 atom must flip")
	}
	// p = (3/4)·(2/3) = 1/2.
	if p.Cmp(big.NewRat(1, 2)) != 0 {
		t.Errorf("mode probability %v, want 1/2", p)
	}
	// The mode's probability matches NuWorld and is maximal over all
	// worlds.
	direct, err := d.NuWorld(w)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Cmp(p) != 0 {
		t.Errorf("NuWorld(mode) = %v, want %v", direct, p)
	}
	err = d.ForEachWorld(10, func(_ *rel.Structure, nu *big.Rat) bool {
		if nu.Cmp(p) > 0 {
			t.Errorf("found world with probability %v > mode %v", nu, p)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}
