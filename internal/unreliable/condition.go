package unreliable

import (
	"fmt"
	"math/big"

	"qrel/internal/rel"
)

// Condition returns the database obtained by conditioning the world
// distribution on the event "atom holds in the actual database is
// `value`". Because the per-atom error events are independent, the
// posterior simply fixes this atom (its error probability becomes 0 or
// 1 depending on whether the observed value matches) and leaves every
// other atom untouched. Conditioning on a probability-zero event is an
// error.
//
// Conditioning supports sensitivity analysis: comparing R_ψ(D | Rā)
// against R_ψ(D | ¬Rā) measures how much one fact's truth drives the
// query's risk.
func (d *DB) Condition(atom rel.GroundAtom, value bool) (*DB, error) {
	nu := d.NuAtom(atom)
	if value && nu.Sign() == 0 {
		return nil, fmt.Errorf("unreliable: conditioning on %v = true, which has probability 0", atom)
	}
	if !value && nu.Cmp(ratOne) == 0 {
		return nil, fmt.Errorf("unreliable: conditioning on %v = false, which has probability 0", atom)
	}
	c := d.Clone()
	observed := d.A.Holds(atom.Rel, atom.Args)
	var mu *big.Rat
	if observed == value {
		mu = new(big.Rat) // certainly right
	} else {
		mu = new(big.Rat).Set(ratOne) // certainly wrong
	}
	if err := c.SetError(atom, mu); err != nil {
		return nil, err
	}
	return c, nil
}

// MostLikelyWorld returns a world of maximal probability together with
// that probability: each uncertain atom independently keeps its
// observed value when mu ≤ 1/2 and flips otherwise (ties broken toward
// keeping). Deterministic flips (mu = 1) are applied.
func (d *DB) MostLikelyWorld() (*rel.Structure, *big.Rat) {
	d.refresh()
	b := d.A.Clone()
	p := new(big.Rat).Set(ratOne)
	for _, e := range d.sure {
		b.Rel(e.atom.Rel).Toggle(e.atom.Args)
	}
	for _, e := range d.uncertain {
		keep := new(big.Rat).Sub(ratOne, e.mu)
		if e.mu.Cmp(ratHalf) > 0 {
			b.Rel(e.atom.Rel).Toggle(e.atom.Args)
			p.Mul(p, e.mu)
		} else {
			p.Mul(p, keep)
		}
	}
	return b, p
}

// AtomInfluence returns, for the given atom, the pair of conditioned
// databases (atom true, atom false) when both events have positive
// probability; a nil entry marks an impossible branch.
func (d *DB) AtomInfluence(atom rel.GroundAtom) (whenTrue, whenFalse *DB) {
	if t, err := d.Condition(atom, true); err == nil {
		whenTrue = t
	}
	if f, err := d.Condition(atom, false); err == nil {
		whenFalse = f
	}
	return whenTrue, whenFalse
}
