package unreliable

import (
	"fmt"
	"math/big"

	"qrel/internal/rel"
)

// FromProbabilities builds an unreliable database from the alternative
// presentation discussed in the Remark of Section 2: instead of an
// observed database and error probabilities, each ground atom directly
// carries the probability nu(Rā) that it holds in the actual database.
//
// The construction picks as observed database the modal world — atom
// present iff nu ≥ 1/2 — and sets mu = 1 − nu for present atoms and
// mu = nu for absent ones, which induces exactly the given distribution.
// Atoms not listed are taken as certainly absent (nu = 0).
func FromProbabilities(n int, voc *rel.Vocabulary, nu map[rel.AtomKey]*big.Rat) (*DB, error) {
	a, err := rel.NewStructure(n, voc)
	if err != nil {
		return nil, err
	}
	d := New(a)
	for k, p := range nu {
		if p == nil || p.Cmp(ratZero) < 0 || p.Cmp(ratOne) > 0 {
			return nil, fmt.Errorf("unreliable: nu(%v) = %v outside [0,1]", k.Atom(), p)
		}
		atom := k.Atom()
		var mu *big.Rat
		if p.Cmp(ratHalf) >= 0 {
			if err := a.Add(atom.Rel, atom.Args); err != nil {
				return nil, err
			}
			mu = new(big.Rat).Sub(ratOne, p)
		} else {
			mu = new(big.Rat).Set(p)
		}
		if err := d.SetError(atom, mu); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Probabilities returns the tuple-independent view of the database: the
// map of nu(Rā) for every atom with nu ∉ {0} — i.e. all observed facts
// and all uncertain atoms. Certainly-absent atoms are omitted.
func (d *DB) Probabilities() map[rel.AtomKey]*big.Rat {
	out := map[rel.AtomKey]*big.Rat{}
	d.A.ForEachGroundAtom(func(a rel.GroundAtom) bool {
		nu := d.NuAtom(a)
		if nu.Sign() != 0 {
			out[a.Key()] = nu
		}
		return true
	})
	return out
}
