package unreliable

import (
	"bufio"
	"fmt"
	"io"
	"math/big"
	"sort"
	"strconv"
	"strings"

	"qrel/internal/rel"
)

// This file implements a line-oriented text format for unreliable
// databases, used by the command-line tools and examples:
//
//	# comment
//	universe 5
//	rel E/2
//	rel S/1
//	const c 0
//	E 0 1                  # observed fact, certain
//	E 1 2 err 1/10         # observed fact, error probability 1/10
//	S 3 absent err 1/2     # non-fact with error probability 1/2
//
// Lines are independent; "universe" must precede relations' facts and
// "rel" declarations must precede their use. Probabilities are exact
// rationals "p/q" or decimal strings accepted by big.Rat.SetString.

// ParseDB reads an unreliable database in the text format.
func ParseDB(r io.Reader) (*DB, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	voc := &rel.Vocabulary{}
	var (
		db   *DB
		n    = -1
		line int
	)
	type constDecl struct {
		name string
		elem int
	}
	var consts []constDecl
	ensureDB := func() error {
		if db != nil {
			return nil
		}
		if n < 0 {
			return fmt.Errorf("unreliable: line %d: universe size not declared", line)
		}
		s, err := rel.NewStructure(n, voc)
		if err != nil {
			return err
		}
		for _, c := range consts {
			if err := s.SetConst(c.name, c.elem); err != nil {
				return err
			}
		}
		db = New(s)
		return nil
	}
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "universe":
			if n >= 0 {
				return nil, fmt.Errorf("unreliable: line %d: duplicate universe declaration", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("unreliable: line %d: want 'universe <n>'", line)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("unreliable: line %d: bad universe size %q", line, fields[1])
			}
			n = v
		case "rel":
			if db != nil {
				return nil, fmt.Errorf("unreliable: line %d: rel declaration after facts", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("unreliable: line %d: want 'rel <Name>/<arity>'", line)
			}
			name, arityStr, ok := strings.Cut(fields[1], "/")
			if !ok {
				return nil, fmt.Errorf("unreliable: line %d: want 'rel <Name>/<arity>'", line)
			}
			arity, err := strconv.Atoi(arityStr)
			if err != nil {
				return nil, fmt.Errorf("unreliable: line %d: bad arity %q", line, arityStr)
			}
			if err := voc.AddRel(rel.RelSym{Name: name, Arity: arity}); err != nil {
				return nil, fmt.Errorf("unreliable: line %d: %w", line, err)
			}
		case "const":
			if db != nil {
				return nil, fmt.Errorf("unreliable: line %d: const declaration after facts", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("unreliable: line %d: want 'const <name> <elem>'", line)
			}
			e, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("unreliable: line %d: bad element %q", line, fields[2])
			}
			if err := voc.AddConst(fields[1]); err != nil {
				return nil, fmt.Errorf("unreliable: line %d: %w", line, err)
			}
			consts = append(consts, constDecl{fields[1], e})
		default:
			sym, ok := voc.Rel(fields[0])
			if !ok {
				return nil, fmt.Errorf("unreliable: line %d: unknown relation %q", line, fields[0])
			}
			if err := ensureDB(); err != nil {
				return nil, err
			}
			rest := fields[1:]
			if len(rest) < sym.Arity {
				return nil, fmt.Errorf("unreliable: line %d: %s needs %d elements", line, sym, sym.Arity)
			}
			tup := make(rel.Tuple, sym.Arity)
			for i := 0; i < sym.Arity; i++ {
				e, err := strconv.Atoi(rest[i])
				if err != nil {
					return nil, fmt.Errorf("unreliable: line %d: bad element %q", line, rest[i])
				}
				tup[i] = e
			}
			rest = rest[sym.Arity:]
			present := true
			if len(rest) > 0 && rest[0] == "absent" {
				present = false
				rest = rest[1:]
			}
			var errProb *big.Rat
			if len(rest) >= 2 && rest[0] == "err" {
				p, ok := new(big.Rat).SetString(rest[1])
				if !ok {
					return nil, fmt.Errorf("unreliable: line %d: bad probability %q", line, rest[1])
				}
				errProb = p
				rest = rest[2:]
			}
			if len(rest) != 0 {
				return nil, fmt.Errorf("unreliable: line %d: trailing tokens %v", line, rest)
			}
			if present {
				if err := db.A.Add(fields[0], tup); err != nil {
					return nil, fmt.Errorf("unreliable: line %d: %w", line, err)
				}
			}
			if errProb != nil {
				if err := db.SetError(rel.GroundAtom{Rel: fields[0], Args: tup}, errProb); err != nil {
					return nil, fmt.Errorf("unreliable: line %d: %w", line, err)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("unreliable: reading database: %w", err)
	}
	if err := ensureDB(); err != nil {
		return nil, err
	}
	return db, nil
}

// WriteDB writes the database in the text format; parsing the output
// reconstructs an equivalent database.
func WriteDB(w io.Writer, d *DB) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "universe %d\n", d.A.N)
	for _, sym := range d.A.Voc.Rels {
		fmt.Fprintf(bw, "rel %s\n", sym)
	}
	constNames := make([]string, 0, len(d.A.Consts))
	for name := range d.A.Consts {
		constNames = append(constNames, name)
	}
	sort.Strings(constNames)
	for _, name := range constNames {
		fmt.Fprintf(bw, "const %s %d\n", name, d.A.Consts[name])
	}
	// Present facts (with error annotation when uncertain).
	for _, sym := range d.A.Voc.Rels {
		for _, tup := range d.A.Rel(sym.Name).Tuples() {
			fmt.Fprintf(bw, "%s%s", sym.Name, elems(tup))
			mu := d.ErrorProb(rel.GroundAtom{Rel: sym.Name, Args: tup})
			if mu.Sign() != 0 {
				fmt.Fprintf(bw, " err %s", mu.RatString())
			}
			fmt.Fprintln(bw)
		}
	}
	// Absent atoms with nonzero error.
	d.refresh()
	for _, e := range append(append([]entry{}, d.uncertain...), d.sure...) {
		if d.A.Holds(e.atom.Rel, e.atom.Args) {
			continue
		}
		fmt.Fprintf(bw, "%s%s absent err %s\n", e.atom.Rel, elems(e.atom.Args), e.mu.RatString())
	}
	return bw.Flush()
}

func elems(t rel.Tuple) string {
	var b strings.Builder
	for _, e := range t {
		fmt.Fprintf(&b, " %d", e)
	}
	return b.String()
}
