package unreliable

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"qrel/internal/rel"
)

// TestQuickNuComplement checks, for arbitrary error probabilities, the
// defining identities of Section 2: nu(atom) = 1 − mu for observed
// facts and nu(atom) = mu for absent ones.
func TestQuickNuComplement(t *testing.T) {
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	f := func(num uint16, denRaw uint16) bool {
		den := int64(denRaw%999) + 1
		p := big.NewRat(int64(num)%(den+1), den)
		s := rel.MustStructure(2, voc)
		s.MustAdd("S", 0)
		d := New(s)
		if err := d.SetError(atomS(0), p); err != nil {
			return false
		}
		if err := d.SetError(atomS(1), p); err != nil {
			return false
		}
		one := big.NewRat(1, 1)
		nuPresent := d.NuAtom(atomS(0))
		nuAbsent := d.NuAtom(atomS(1))
		sum := new(big.Rat).Add(nuPresent, p)
		return sum.Cmp(one) == 0 && nuAbsent.Cmp(p) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickWorldProbProduct checks that WorldProb factorizes over the
// uncertain atoms: the probability of a mask is the product of each
// atom's flip/keep factor, for random mu vectors and masks.
func TestQuickWorldProbProduct(t *testing.T) {
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	f := func(seed int64, mask uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := rel.MustStructure(8, voc)
		d := New(s)
		mus := make([]*big.Rat, 5)
		for i := range mus {
			mus[i] = big.NewRat(int64(1+rng.Intn(9)), 10)
			d.MustSetError(atomS(i), mus[i])
		}
		m := uint64(mask) & 0x1f
		got := d.WorldProb(m)
		want := big.NewRat(1, 1)
		one := big.NewRat(1, 1)
		for i, mu := range mus {
			if m&(1<<uint(i)) != 0 {
				want.Mul(want, mu)
			} else {
				want.Mul(want, new(big.Rat).Sub(one, mu))
			}
		}
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickGClearsEveryWorld checks the defining property of the
// corrected g on arbitrary denominators.
func TestQuickGClearsEveryWorld(t *testing.T) {
	voc := rel.MustVocabulary(rel.RelSym{Name: "S", Arity: 1})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := rel.MustStructure(6, voc)
		d := New(s)
		for i := 0; i < 4; i++ {
			den := int64(2 + rng.Intn(30))
			num := 1 + rng.Int63n(den-1)
			d.MustSetError(atomS(i), big.NewRat(num, den))
		}
		g := new(big.Rat).SetInt(d.G())
		ok := true
		d.ForEachWorld(10, func(_ *rel.Structure, nu *big.Rat) bool {
			if !new(big.Rat).Mul(nu, g).IsInt() {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
