// Package checkpoint provides the crash-safe snapshot store behind the
// engines' checkpoint/resume support: an append-only sequence of
// atomic, checksummed snapshot files in a directory.
//
// Durability protocol (per snapshot):
//
//  1. the payload is framed with a magic string, format version,
//     length, and CRC-32C checksum;
//  2. the frame is written to a fresh .tmp file and fsynced;
//  3. the .tmp file is renamed onto its final name ckpt-NNNNNNNN.qckpt
//     (atomic on POSIX) and the directory is fsynced.
//
// A crash in any window leaves either the previous snapshot set intact
// (crash before the rename — at worst an orphaned .tmp file, ignored
// and garbage-collected) or the new snapshot fully committed. Torn or
// silently corrupted files — short writes, bit flips, zero fills — are
// detected by the frame checks on load and rejected with
// ErrCorruptCheckpoint; LoadLatest then falls back to the next older
// snapshot, so one bad file never strands a job. Retention keeps the
// newest KeepLast snapshots precisely so that fallback has somewhere
// to land.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"qrel/internal/faultinject"
)

// ErrCorruptCheckpoint reports a snapshot file that failed the frame
// checks: wrong magic, unsupported version, truncated or oversized
// payload, or checksum mismatch. It is never a panic and never a
// silent acceptance: callers see either a good payload or this error.
var ErrCorruptCheckpoint = errors.New("checkpoint: corrupt or torn snapshot")

// ErrNoCheckpoint reports a store with no readable snapshot at all.
var ErrNoCheckpoint = errors.New("checkpoint: no snapshot")

const (
	// magic opens every snapshot file; version is the format version.
	magic   = "QRELCKPT"
	version = uint32(1)
	// headerSize = magic + version + payload length + CRC-32C.
	headerSize = len(magic) + 4 + 8 + 4
	// maxPayload bounds a snapshot payload (a defense against reading a
	// garbage length from a corrupt header, not a practical limit:
	// estimator states are well under a kilobyte).
	maxPayload = int64(1 << 30)
	// DefaultKeepLast is the retention depth when Options.KeepLast is 0.
	DefaultKeepLast = 3

	snapExt = ".qckpt"
	tmpExt  = ".tmp"
)

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Metrics aggregates checkpoint activity across stores. A serving layer
// shares one Metrics between all job stores and exports it in /statz.
// All methods are safe for concurrent use; the zero value is ready.
type Metrics struct {
	written         atomic.Int64
	resumed         atomic.Int64
	corruptRejected atomic.Int64
	bytesWritten    atomic.Int64
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	// Written counts snapshots committed; BytesWritten their total
	// framed size in bytes.
	Written      int64 `json:"written"`
	BytesWritten int64 `json:"bytes_written"`
	// Resumed counts successful LoadLatest calls (each is one run
	// continuing from a snapshot).
	Resumed int64 `json:"resumed"`
	// CorruptRejected counts snapshot files rejected by the frame
	// checks.
	CorruptRejected int64 `json:"corrupt_rejected"`
}

// Snapshot reads the counters. A nil *Metrics reads as zero.
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	return Snapshot{
		Written:         m.written.Load(),
		BytesWritten:    m.bytesWritten.Load(),
		Resumed:         m.resumed.Load(),
		CorruptRejected: m.corruptRejected.Load(),
	}
}

func (m *Metrics) addWritten(bytes int64) {
	if m != nil {
		m.written.Add(1)
		m.bytesWritten.Add(bytes)
	}
}

func (m *Metrics) addResumed() {
	if m != nil {
		m.resumed.Add(1)
	}
}

func (m *Metrics) addCorrupt() {
	if m != nil {
		m.corruptRejected.Add(1)
	}
}

// Options tunes a Store; the zero value is production-safe.
type Options struct {
	// KeepLast is the number of newest snapshots retained
	// (default DefaultKeepLast). At least one is always kept.
	KeepLast int
	// Metrics, when non-nil, receives this store's counters.
	Metrics *Metrics
}

// Store is an atomic, checksummed snapshot store over one directory.
// One Store belongs to one logical job; concurrent use by multiple
// goroutines is safe, but two processes must not share a directory.
type Store struct {
	dir     string
	keep    int
	metrics *Metrics

	mu  sync.Mutex
	seq uint64 // highest sequence number in use
}

// Open creates (if needed) and scans a snapshot directory.
func Open(dir string, opts Options) (*Store, error) {
	if opts.KeepLast <= 0 {
		opts.KeepLast = DefaultKeepLast
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("checkpoint: creating %s: %w", dir, err)
	}
	s := &Store{dir: dir, keep: opts.KeepLast, metrics: opts.Metrics}
	seqs, err := s.sequences()
	if err != nil {
		return nil, err
	}
	if len(seqs) > 0 {
		s.seq = seqs[len(seqs)-1]
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// name renders the snapshot filename for a sequence number.
func (s *Store) name(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("ckpt-%016d%s", seq, snapExt))
}

// sequences lists the committed snapshot sequence numbers, ascending.
// Files that do not match the naming scheme (orphaned .tmp files
// included) are ignored.
func (s *Store) sequences() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading %s: %w", s.dir, err)
	}
	var seqs []uint64
	for _, e := range entries {
		// Sscanf matches a prefix, so an orphaned "ckpt-N.qckpt.tmp" left
		// by a crashed commit would otherwise parse as committed snapshot
		// N — and a later load would try to open a file that was never
		// renamed into place.
		if !strings.HasSuffix(e.Name(), snapExt) {
			continue
		}
		var seq uint64
		if n, err := fmt.Sscanf(e.Name(), "ckpt-%016d"+snapExt, &seq); n == 1 && err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// encode frames a payload: magic | version | length | CRC-32C | payload.
func encode(payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	copy(buf, magic)
	off := len(magic)
	binary.BigEndian.PutUint32(buf[off:], version)
	off += 4
	binary.BigEndian.PutUint64(buf[off:], uint64(len(payload)))
	off += 8
	binary.BigEndian.PutUint32(buf[off:], crc32.Checksum(payload, castagnoli))
	off += 4
	copy(buf[off:], payload)
	return buf
}

// decode verifies a frame and returns the payload. Every failure mode
// wraps ErrCorruptCheckpoint.
func decode(data []byte) ([]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, below the %d-byte header", ErrCorruptCheckpoint, len(data), headerSize)
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptCheckpoint)
	}
	off := len(magic)
	if v := binary.BigEndian.Uint32(data[off:]); v != version {
		return nil, fmt.Errorf("%w: unsupported format version %d", ErrCorruptCheckpoint, v)
	}
	off += 4
	n := binary.BigEndian.Uint64(data[off:])
	off += 8
	if n > uint64(maxPayload) || uint64(len(data)-headerSize) != n {
		return nil, fmt.Errorf("%w: payload length %d does not match %d file bytes", ErrCorruptCheckpoint, n, len(data)-headerSize)
	}
	want := binary.BigEndian.Uint32(data[off:])
	off += 4
	payload := data[off:]
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (have %08x, want %08x)", ErrCorruptCheckpoint, got, want)
	}
	return payload, nil
}

// EncodeFrame frames a payload with the snapshot wire format — the
// same magic/version/length/CRC-32C header the on-disk store writes.
// It is the codec used for shipping checkpoints between processes
// (coordinator ↔ replica): a frame produced here round-trips through
// DecodeFrame, and a frame read from a store file decodes identically.
func EncodeFrame(payload []byte) []byte { return encode(payload) }

// DecodeFrame verifies a shipped frame and returns its payload. Every
// failure mode — truncation, bad magic, version or length mismatch,
// checksum failure — wraps ErrCorruptCheckpoint; it never panics on
// arbitrary input.
func DecodeFrame(data []byte) ([]byte, error) { return decode(data) }

// Save commits one snapshot: write-temp, fsync, rename, fsync-dir,
// then prune beyond the retention depth. On error nothing newer than
// the previous snapshot is visible.
func (s *Store) Save(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	final := s.name(s.seq)
	tmp := final + tmpExt
	frame := encode(payload)

	if err := faultinject.Hit(faultinject.SiteCkptShortWrite); err != nil {
		// Simulated torn write: half the frame reaches the disk but the
		// commit protocol continues — load must catch it.
		frame = frame[:len(frame)/2]
	}
	if err := writeFileSync(tmp, frame); err != nil {
		return fmt.Errorf("checkpoint: writing %s: %w", tmp, err)
	}
	if err := faultinject.Hit(faultinject.SiteCkptBitFlip); err != nil {
		// Simulated media corruption: flip one payload byte in place.
		frame[len(frame)-1] ^= 0x40
		if werr := writeFileSync(tmp, frame); werr != nil {
			return fmt.Errorf("checkpoint: writing %s: %w", tmp, werr)
		}
	}
	if err := faultinject.Hit(faultinject.SiteCkptCrash); err != nil {
		// Simulated crash between write and rename: the temp file stays,
		// the snapshot is never committed.
		return fmt.Errorf("checkpoint: crashed before rename of %s: %w", tmp, err)
	}
	if err := faultinject.Hit(faultinject.SiteCkptRename); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("checkpoint: renaming %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("checkpoint: renaming %s: %w", tmp, err)
	}
	syncDir(s.dir)
	s.metrics.addWritten(int64(len(frame)))
	s.pruneLocked()
	return nil
}

// LoadLatest returns the payload of the newest readable snapshot.
// Corrupt or torn files are rejected (counted in Metrics) and the scan
// falls back to the next older snapshot; the returned error is
// ErrNoCheckpoint when the directory has no snapshot at all, or wraps
// ErrCorruptCheckpoint when snapshots exist but every one is bad.
func (s *Store) LoadLatest() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seqs, err := s.sequences()
	if err != nil {
		return nil, err
	}
	var lastErr error
	for i := len(seqs) - 1; i >= 0; i-- {
		data, err := os.ReadFile(s.name(seqs[i]))
		if err != nil {
			lastErr = err
			continue
		}
		payload, err := decode(data)
		if err != nil {
			s.metrics.addCorrupt()
			lastErr = fmt.Errorf("%s: %w", s.name(seqs[i]), err)
			continue
		}
		s.metrics.addResumed()
		return payload, nil
	}
	if lastErr != nil {
		return nil, lastErr
	}
	return nil, ErrNoCheckpoint
}

// pruneLocked removes snapshots beyond the retention depth and any
// orphaned temp files older than the newest snapshot's window.
func (s *Store) pruneLocked() {
	seqs, err := s.sequences()
	if err != nil {
		return
	}
	for len(seqs) > s.keep {
		_ = os.Remove(s.name(seqs[0]))
		seqs = seqs[1:]
	}
	// Orphaned .tmp files are leftovers of crashed commits; any whose
	// sequence is at or below the committed head is dead.
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		var seq uint64
		if n, err := fmt.Sscanf(e.Name(), "ckpt-%016d"+snapExt+tmpExt, &seq); n == 1 && err == nil && seq <= s.seq {
			_ = os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
}

// WriteFileAtomic writes data to path with the same write-temp + fsync
// + rename + fsync-dir protocol the snapshot files use. The job journal
// uses it for its metadata files.
func WriteFileAtomic(path string, data []byte) error {
	tmp := path + tmpExt
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// writeFileSync writes data to a fresh file and fsyncs it.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a committed rename survives power loss.
// Best effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
