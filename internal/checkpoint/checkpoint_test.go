package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qrel/internal/faultinject"
)

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := mustOpen(t, Options{})
	for i := 0; i < 3; i++ {
		if err := s.Save([]byte(fmt.Sprintf("state-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "state-2" {
		t.Fatalf("LoadLatest = %q, want state-2", got)
	}
}

func TestLoadEmptyStore(t *testing.T) {
	s := mustOpen(t, Options{})
	if _, err := s.LoadLatest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty store: err = %v, want ErrNoCheckpoint", err)
	}
}

func TestRetentionKeepsLastN(t *testing.T) {
	s := mustOpen(t, Options{KeepLast: 2})
	for i := 0; i < 5; i++ {
		if err := s.Save([]byte(fmt.Sprintf("s%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := s.sequences()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("retention kept %d snapshots, want 2", len(seqs))
	}
	got, err := s.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "s4" {
		t.Fatalf("LoadLatest = %q, want s4", got)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save([]byte("one")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Save([]byte("two")); err != nil {
		t.Fatal(err)
	}
	got, err := s2.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "two" {
		t.Fatalf("LoadLatest after reopen = %q, want two", got)
	}
}

// newestSnapshot returns the path of the newest committed snapshot.
func newestSnapshot(t *testing.T, s *Store) string {
	t.Helper()
	seqs, err := s.sequences()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) == 0 {
		t.Fatal("no snapshots")
	}
	return s.name(seqs[len(seqs)-1])
}

// TestCorruptSnapshotsRejected is the table-driven torn/corrupt
// handling test: every mutilation of a committed snapshot must surface
// as ErrCorruptCheckpoint — never a panic, never silent acceptance —
// and an older good snapshot must be served instead when one exists.
func TestCorruptSnapshotsRejected(t *testing.T) {
	corruptions := []struct {
		name string
		mut  func(t *testing.T, path string)
	}{
		{"truncate-mid-payload", func(t *testing.T, path string) {
			data := readFile(t, path)
			writeFile(t, path, data[:len(data)-3])
		}},
		{"truncate-into-header", func(t *testing.T, path string) {
			writeFile(t, path, readFile(t, path)[:headerSize-2])
		}},
		{"truncate-to-empty", func(t *testing.T, path string) {
			writeFile(t, path, nil)
		}},
		{"bit-flip-payload", func(t *testing.T, path string) {
			data := readFile(t, path)
			data[len(data)-1] ^= 0x01
			writeFile(t, path, data)
		}},
		{"bit-flip-magic", func(t *testing.T, path string) {
			data := readFile(t, path)
			data[0] ^= 0x01
			writeFile(t, path, data)
		}},
		{"bit-flip-crc", func(t *testing.T, path string) {
			data := readFile(t, path)
			data[len(magic)+4+8] ^= 0x80
			writeFile(t, path, data)
		}},
		{"zero-fill", func(t *testing.T, path string) {
			data := readFile(t, path)
			writeFile(t, path, make([]byte, len(data)))
		}},
		{"length-overflow", func(t *testing.T, path string) {
			data := readFile(t, path)
			for i := 0; i < 8; i++ {
				data[len(magic)+4+i] = 0xff
			}
			writeFile(t, path, data)
		}},
		{"extra-trailing-bytes", func(t *testing.T, path string) {
			writeFile(t, path, append(readFile(t, path), 0xde, 0xad))
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			metrics := &Metrics{}
			s, err := Open(t.TempDir(), Options{Metrics: metrics})
			if err != nil {
				t.Fatal(err)
			}
			// Only snapshot corrupted: the typed error must surface.
			if err := s.Save([]byte("only")); err != nil {
				t.Fatal(err)
			}
			tc.mut(t, newestSnapshot(t, s))
			if _, err := s.LoadLatest(); !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("LoadLatest on corrupt-only store: err = %v, want ErrCorruptCheckpoint", err)
			}
			// With an older good snapshot: fall back to it.
			s2, err := Open(t.TempDir(), Options{Metrics: metrics})
			if err != nil {
				t.Fatal(err)
			}
			if err := s2.Save([]byte("good")); err != nil {
				t.Fatal(err)
			}
			if err := s2.Save([]byte("bad")); err != nil {
				t.Fatal(err)
			}
			tc.mut(t, newestSnapshot(t, s2))
			got, err := s2.LoadLatest()
			if err != nil {
				t.Fatalf("LoadLatest with good fallback: %v", err)
			}
			if string(got) != "good" {
				t.Fatalf("LoadLatest = %q, want the older good snapshot", got)
			}
			if metrics.Snapshot().CorruptRejected < 2 {
				t.Fatalf("CorruptRejected = %d, want >= 2", metrics.Snapshot().CorruptRejected)
			}
		})
	}
}

func TestInjectedShortWriteCommitsTornSnapshot(t *testing.T) {
	defer faultinject.Reset()
	s := mustOpen(t, Options{})
	if err := s.Save([]byte("good")); err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(faultinject.SiteCkptShortWrite, faultinject.Fault{Err: errors.New("torn"), Times: 1})
	if err := s.Save([]byte("torn-snapshot-payload")); err != nil {
		t.Fatalf("short write should commit silently (the fault models lost sectors): %v", err)
	}
	got, err := s.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "good" {
		t.Fatalf("LoadLatest = %q, want fallback to the pre-fault snapshot", got)
	}
}

func TestInjectedBitFlipRejectedOnLoad(t *testing.T) {
	defer faultinject.Reset()
	metrics := &Metrics{}
	s, err := Open(t.TempDir(), Options{Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save([]byte("good")); err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(faultinject.SiteCkptBitFlip, faultinject.Fault{Err: errors.New("flip"), Times: 1})
	if err := s.Save([]byte("flipped")); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "good" {
		t.Fatalf("LoadLatest = %q, want fallback past the bit-flipped snapshot", got)
	}
	if metrics.Snapshot().CorruptRejected == 0 {
		t.Fatal("bit-flipped snapshot was not counted as corrupt")
	}
}

func TestInjectedRenameFailureKeepsPreviousSnapshot(t *testing.T) {
	defer faultinject.Reset()
	s := mustOpen(t, Options{})
	if err := s.Save([]byte("good")); err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(faultinject.SiteCkptRename, faultinject.Fault{Err: errors.New("EIO"), Times: 1})
	if err := s.Save([]byte("never-committed")); err == nil {
		t.Fatal("Save with failing rename returned nil")
	}
	got, err := s.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "good" {
		t.Fatalf("LoadLatest = %q, want the pre-failure snapshot", got)
	}
}

func TestInjectedCrashWindowLeavesTmpAndRecovers(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save([]byte("good")); err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(faultinject.SiteCkptCrash, faultinject.Fault{Err: errors.New("SIGKILL"), Times: 1})
	if err := s.Save([]byte("in-the-window")); err == nil {
		t.Fatal("Save in the crash window returned nil")
	}
	// The orphaned temp file must not confuse a restarted store.
	if n := countFiles(t, dir, tmpExt); n != 1 {
		t.Fatalf("crash window left %d temp files, want 1", n)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "good" {
		t.Fatalf("LoadLatest after crash = %q, want good", got)
	}
	if err := s2.Save([]byte("after-restart")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s2.LoadLatest(); string(got) != "after-restart" {
		t.Fatalf("LoadLatest = %q, want after-restart", got)
	}
	// The successful save garbage-collects the orphan.
	if n := countFiles(t, dir, tmpExt); n != 0 {
		t.Fatalf("%d orphaned temp files survived a successful save", n)
	}
}

// TestReopenIgnoresOrphanTmp: a crash during the very first Save
// leaves an orphaned temp file and no committed snapshot. The
// reopened store must not parse the orphan's "ckpt-N" prefix as a
// committed sequence number — LoadLatest reports ErrNoCheckpoint,
// and the next successful Save reclaims the sequence slot and
// garbage-collects the orphan.
func TestReopenIgnoresOrphanTmp(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(faultinject.SiteCkptCrash, faultinject.Fault{Err: errors.New("SIGKILL"), Times: 1})
	if err := s.Save([]byte("never-committed")); err == nil {
		t.Fatal("Save in the crash window returned nil")
	}
	faultinject.Reset()
	if n := countFiles(t, dir, tmpExt); n != 1 {
		t.Fatalf("crash window left %d temp files, want 1", n)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.LoadLatest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("LoadLatest with only an orphan tmp = %v, want ErrNoCheckpoint", err)
	}
	if err := s2.Save([]byte("committed")); err != nil {
		t.Fatal(err)
	}
	if got, err := s2.LoadLatest(); err != nil || string(got) != "committed" {
		t.Fatalf("LoadLatest = %q, %v, want committed", got, err)
	}
	if n := countFiles(t, dir, tmpExt); n != 0 {
		t.Fatalf("%d orphaned temp files survived a successful save", n)
	}
}

func TestMetricsCounters(t *testing.T) {
	metrics := &Metrics{}
	s, err := Open(t.TempDir(), Options{Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadLatest(); err != nil {
		t.Fatal(err)
	}
	snap := metrics.Snapshot()
	if snap.Written != 1 || snap.Resumed != 1 {
		t.Fatalf("metrics = %+v, want Written=1 Resumed=1", snap)
	}
	if snap.BytesWritten <= int64(len("abc")) {
		t.Fatalf("BytesWritten = %d, want > payload size (frame overhead)", snap.BytesWritten)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "job.json")
	if err := WriteFileAtomic(path, []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte(`{"a":2}`)); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); string(got) != `{"a":2}` {
		t.Fatalf("content = %s", got)
	}
	if n := countFiles(t, dir, tmpExt); n != 0 {
		t.Fatalf("%d temp files left behind", n)
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
}

func countFiles(t *testing.T, dir, suffix string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), suffix) {
			n++
		}
	}
	return n
}
