package checkpoint

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the frame decoder. The
// contract: decode either returns the framed payload or an error
// wrapping ErrCorruptCheckpoint — it never panics, and it never
// trusts the frame's self-declared length enough to allocate beyond
// the bytes actually present (the seeds include headers claiming
// huge payloads over a short body).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("QCKPT"))
	f.Add(encode(nil))
	f.Add(encode([]byte("payload")))
	// A valid frame truncated mid-payload — the torn-write shape.
	full := encode([]byte("torn-write-torn-write"))
	f.Add(full[:len(full)/2])
	// A valid header whose length field claims far more than the body.
	huge := encode([]byte("x"))
	copy(huge[len(magic)+4:], []byte{0x7f, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(huge)
	// A single flipped payload bit — must fail the CRC, not decode.
	flipped := encode([]byte("bit-flip"))
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("decode error does not wrap ErrCorruptCheckpoint: %v", err)
			}
			return
		}
		// Round-trip: anything decode accepts must re-encode to the
		// same frame, so accepted frames are canonical.
		if !bytes.Equal(encode(payload), data) {
			t.Fatalf("accepted frame is not canonical: payload %q re-encodes differently", payload)
		}
	})
}
