package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// postJob submits a durable job and decodes the status or error body.
func postJob(t *testing.T, url string, req Request) (int, *JobStatus, *ErrorResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, &st, nil
	}
	var ec ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&ec); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, nil, &ec
}

// getJob polls one job.
func getJob(t *testing.T, url, id string) (int, *JobStatus) {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return resp.StatusCode, nil
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, &st
}

// waitJob polls until the job leaves the running state.
func waitJob(t *testing.T, url, id string, timeout time.Duration) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		code, st := getJob(t, url, id)
		if code == http.StatusNotFound {
			t.Fatalf("job %s vanished", id)
		}
		if st.State != JobRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running after %v", id, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestJobLifecycleAndIdempotency(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{CheckpointDir: dir})
	req := Request{
		DB:             "g",
		Query:          "E(x,y) & S(x)",
		Engine:         "monte-carlo-direct",
		Eps:            0.1,
		Delta:          0.1,
		Seed:           7,
		IdempotencyKey: "job-lifecycle-1",
	}

	code, st, _ := postJob(t, ts.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", code)
	}
	if st.ID == "" || st.State != JobRunning {
		t.Fatalf("submit returned %+v", st)
	}
	final := waitJob(t, ts.URL, st.ID, 10*time.Second)
	if final.State != JobDone || final.Result == nil {
		t.Fatalf("job finished as %+v", final)
	}
	if final.Result.Seed != 7 {
		t.Fatalf("job result Seed = %d, want 7", final.Result.Seed)
	}

	// The synchronous endpoint with identical parameters must agree
	// bit-for-bit — same seed, same stream, same estimate.
	syncReq := req
	syncReq.IdempotencyKey = ""
	code, res, _, _ := post(t, ts.URL, syncReq)
	if code != http.StatusOK {
		t.Fatalf("sync run: status %d", code)
	}
	if res.R != final.Result.R || res.H != final.Result.H || res.Samples != final.Result.Samples {
		t.Fatalf("job result (r=%v h=%v n=%d) != sync result (r=%v h=%v n=%d)",
			final.Result.R, final.Result.H, final.Result.Samples, res.R, res.H, res.Samples)
	}

	// Re-submitting the same idempotency key re-attaches to the finished
	// job: 200, same ID, no new computation.
	code, st2, _ := postJob(t, ts.URL, req)
	if code != http.StatusOK || st2.ID != st.ID || st2.State != JobDone {
		t.Fatalf("resubmit: status %d job %+v", code, st2)
	}
	if got := s.Statz().Jobs.Submitted; got != 1 {
		t.Fatalf("Jobs.Submitted = %d after resubmit, want 1", got)
	}
	if ck := s.Statz().Checkpoints; ck == nil || ck.Written == 0 {
		t.Fatalf("Statz().Checkpoints = %+v, want written > 0", ck)
	}
}

func TestJobSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{CheckpointDir: t.TempDir()})
	code, _, ec := postJob(t, ts.URL, Request{DB: "g", Query: "S(x)"})
	if code != http.StatusBadRequest || ec.Kind != KindBadRequest {
		t.Fatalf("missing key: %d %+v", code, ec)
	}
	code, _, ec = postJob(t, ts.URL, Request{DB: "nope", Query: "S(x)", IdempotencyKey: "k"})
	if code != http.StatusNotFound {
		t.Fatalf("unknown db: %d %+v", code, ec)
	}
}

func TestJobsDisabledWithoutCheckpointDir(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, _, ec := postJob(t, ts.URL, Request{DB: "g", Query: "S(x)", IdempotencyKey: "k"})
	if code != http.StatusNotImplemented || ec.Kind != KindJobsDisabled {
		t.Fatalf("submit with jobs disabled: %d %+v", code, ec)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/abc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("get with jobs disabled: %d", resp.StatusCode)
	}
}

func TestJobGetUnknown(t *testing.T) {
	_, ts := newTestServer(t, Config{CheckpointDir: t.TempDir()})
	if code, _ := getJob(t, ts.URL, "doesnotexist"); code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", code)
	}
}

// TestJobDrainMidJobAndResume is the drain-vs-checkpoint satellite: a
// SIGTERM-style drain cancels a long job mid-flight, the engine takes
// a final boundary snapshot, the journal stays "running", and a new
// server on the same checkpoint dir resumes it to full accuracy — the
// final estimate bit-identical to a never-interrupted run.
func TestJobDrainMidJobAndResume(t *testing.T) {
	req := Request{
		DB:     "g",
		Query:  "E(x,y) & S(x)",
		Engine: "monte-carlo-direct",
		// Interpreted keeps the ~460k-sample job slow enough to still be
		// mid-flight when the drain lands; the compiled evaluator finishes
		// it inside the sleep below.
		Eval:           "interpreted",
		Eps:            0.004,
		Delta:          0.05,
		Seed:           99,
		IdempotencyKey: "drain-resume-1",
	}

	// Reference: the same job run to completion with no interruption.
	refDir := t.TempDir()
	_, refTS := newTestServer(t, Config{CheckpointDir: refDir})
	_, refSt, _ := postJob(t, refTS.URL, req)
	ref := waitJob(t, refTS.URL, refSt.ID, 60*time.Second)
	if ref.State != JobDone {
		t.Fatalf("reference job: %+v", ref)
	}

	// First server: submit, let it run briefly, then drain hard.
	dir := t.TempDir()
	s1 := New(Config{CheckpointDir: dir, CheckpointEvery: 10000})
	s1.Register("g", testDB(t, 4, 3))
	ts1 := httptest.NewServer(s1.Handler())
	code, st, _ := postJob(t, ts1.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	time.Sleep(150 * time.Millisecond) // let it draw some samples
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s1.Drain(canceled) // deadline already hit: cancels in-flight work
	ts1.Close()
	if got := s1.Statz().Jobs.Suspended; got != 1 {
		t.Fatalf("Jobs.Suspended = %d after drain, want 1", got)
	}
	data, err := os.ReadFile(filepath.Join(dir, st.ID, jobJournalName))
	if err != nil {
		t.Fatal(err)
	}
	var journaled JobStatus
	if err := json.Unmarshal(data, &journaled); err != nil {
		t.Fatal(err)
	}
	if journaled.State != JobRunning {
		t.Fatalf("journal state after drain = %q, want running", journaled.State)
	}

	// Second server on the same dir: the recovery scan resumes the job.
	s2 := New(Config{CheckpointDir: dir, CheckpointEvery: 10000})
	s2.Register("g", testDB(t, 4, 3))
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close() })
	resumed, err := s2.RecoverJobs()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("RecoverJobs resumed %d jobs, want 1", resumed)
	}
	final := waitJob(t, ts2.URL, st.ID, 60*time.Second)
	if final.State != JobDone || final.Result == nil {
		t.Fatalf("resumed job finished as %+v", final)
	}
	if !final.Result.Resumed {
		t.Fatal("resumed job's result does not report Resumed")
	}
	if final.Result.Degraded {
		t.Fatal("resumed job finished Degraded; want full accuracy")
	}
	if final.Resumes == 0 {
		t.Fatalf("job Resumes = %d, want >= 1", final.Resumes)
	}
	if final.Result.R != ref.Result.R || final.Result.H != ref.Result.H ||
		final.Result.Samples != ref.Result.Samples {
		t.Fatalf("resumed (r=%v h=%v n=%d) != uninterrupted (r=%v h=%v n=%d)",
			final.Result.R, final.Result.H, final.Result.Samples,
			ref.Result.R, ref.Result.H, ref.Result.Samples)
	}
	if got := s2.Statz().Jobs.Recovered; got != 1 {
		t.Fatalf("Jobs.Recovered = %d, want 1", got)
	}
}

// TestJobRecoveryFinalizesFinishedStore: a crash can land between the
// completion snapshot and the journal update. Recovery re-admits the
// job; the engine replays the completed state from the store without
// re-sampling and the job is finalized.
func TestJobRecoveryFinalizesFinishedStore(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{CheckpointDir: dir})
	req := Request{
		DB: "g", Query: "E(x,y) & S(x)", Engine: "monte-carlo-direct",
		Eps: 0.1, Delta: 0.1, Seed: 5, IdempotencyKey: "finalize-1",
	}
	_, st, _ := postJob(t, ts1.URL, req)
	done := waitJob(t, ts1.URL, st.ID, 10*time.Second)
	if done.State != JobDone {
		t.Fatalf("job: %+v", done)
	}

	// Simulate the crash window: rewind the journal to "running".
	journaled := *done
	journaled.State = JobRunning
	journaled.Result = nil
	data, err := json.MarshalIndent(&journaled, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, st.ID, jobJournalName), data, 0o666); err != nil {
		t.Fatal(err)
	}

	s2 := New(Config{CheckpointDir: dir})
	s2.Register("g", testDB(t, 4, 3))
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close() })
	if n, err := s2.RecoverJobs(); err != nil || n != 1 {
		t.Fatalf("RecoverJobs = %d, %v", n, err)
	}
	final := waitJob(t, ts2.URL, st.ID, 10*time.Second)
	if final.State != JobDone || final.Result == nil {
		t.Fatalf("recovered job: %+v", final)
	}
	if final.Result.R != done.Result.R || final.Result.Samples != done.Result.Samples {
		t.Fatalf("replayed result (r=%v n=%d) != original (r=%v n=%d)",
			final.Result.R, final.Result.Samples, done.Result.R, done.Result.Samples)
	}
}
