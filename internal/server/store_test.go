package server

import (
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"qrel/internal/store"
)

// buildTestStore writes the canonical 4-element test database into a
// paged store file named g.qstore under a fresh directory and returns
// (dir, path).
func buildTestStore(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "g.qstore")
	if err := store.BuildFromDB(path, testDB(t, 4, 3), store.Options{PageSize: 256}, 0, nil); err != nil {
		t.Fatal(err)
	}
	return dir, path
}

func TestStoreRequestMatchesRegisteredDB(t *testing.T) {
	dir, _ := buildTestStore(t)
	_, ts := newTestServer(t, Config{StoreDir: dir})
	q := "exists x y . E(x,y) & S(x)"
	status, fromStore, _, _ := post(t, ts.URL, Request{Store: "g.qstore", Query: q, Engine: "world-enum"})
	if status != http.StatusOK {
		t.Fatalf("store request status %d, want 200", status)
	}
	_, fromMem, _, _ := post(t, ts.URL, Request{DB: "g", Query: q, Engine: "world-enum"})
	if fromStore.RExact != fromMem.RExact || fromStore.RExact == "" {
		t.Errorf("store R = %q, registered R = %q; want identical non-empty",
			fromStore.RExact, fromMem.RExact)
	}
}

func TestStoreRequestErrors(t *testing.T) {
	dir, _ := buildTestStore(t)
	_, ts := newTestServer(t, Config{StoreDir: dir})
	cases := []struct {
		name   string
		req    Request
		status int
		kind   string
	}{
		{"missing file", Request{Store: "nope.qstore", Query: "S(x)"}, 404, KindNotFound},
		{"relative escape", Request{Store: "../g.qstore", Query: "S(x)"}, 400, KindBadRequest},
		{"absolute path", Request{Store: filepath.Join(dir, "g.qstore"), Query: "S(x)"}, 400, KindBadRequest},
		{"dot", Request{Store: ".", Query: "S(x)"}, 400, KindBadRequest},
		{"store and db", Request{Store: "g.qstore", DB: "g", Query: "S(x)"}, 400, KindBadRequest},
		{"store and db_text", Request{Store: "g.qstore", DBText: "universe 0\n", Query: "S(x)"}, 400, KindBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, _, ec, _ := post(t, ts.URL, c.req)
			if status != c.status {
				t.Fatalf("status %d, want %d (err %+v)", status, c.status, ec)
			}
			if ec.Kind != c.kind {
				t.Errorf("kind %q, want %q", ec.Kind, c.kind)
			}
		})
	}
}

func TestStoreDisabledWithoutStoreDir(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, _, ec, _ := post(t, ts.URL, Request{Store: "g.qstore", Query: "S(x)"})
	if status != 400 || ec.Kind != KindBadRequest {
		t.Errorf("store request without -store-dir: status %d kind %q, want 400 %q",
			status, ec.Kind, KindBadRequest)
	}
}

func TestStoreCorruptionIsTyped(t *testing.T) {
	dir, path := buildTestStore(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Damage every page after the first meta page: whichever page the
	// load touches first, the checksum must catch it.
	for off := 256; off+100 < len(raw); off += 256 {
		raw[off+100] ^= 0x20
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{StoreDir: dir})
	status, _, ec, _ := post(t, ts.URL, Request{Store: "g.qstore", Query: "exists x . S(x)"})
	if status != http.StatusInternalServerError || ec.Kind != KindCorruptStore {
		t.Fatalf("corrupt store: status %d kind %q, want 500 %q", status, ec.Kind, KindCorruptStore)
	}
}

func TestStoreLoadedOnceAndCached(t *testing.T) {
	dir, path := buildTestStore(t)
	_, ts := newTestServer(t, Config{StoreDir: dir})
	q := "exists x . S(x)"
	if status, _, ec, _ := post(t, ts.URL, Request{Store: "g.qstore", Query: q}); status != 200 {
		t.Fatalf("first request: status %d (%+v)", status, ec)
	}
	// The loaded database is cached, so the file is no longer needed.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if status, _, ec, _ := post(t, ts.URL, Request{Store: "g.qstore", Query: q}); status != 200 {
		t.Errorf("cached request after file removal: status %d (%+v)", status, ec)
	}
}

// TestStoreReplacedFileInvalidatesCache: the per-name cache is keyed
// by the file's (mtime, size); replacing the store file on disk must
// serve the new contents, not the process-lifetime-stale cache.
func TestStoreReplacedFileInvalidatesCache(t *testing.T) {
	dir, path := buildTestStore(t)
	_, ts := newTestServer(t, Config{StoreDir: dir})
	q := "exists x y . E(x,y)"
	status, first, ec, _ := post(t, ts.URL, Request{Store: "g.qstore", Query: q, Engine: "world-enum"})
	if status != http.StatusOK {
		t.Fatalf("first request: status %d (%+v)", status, ec)
	}
	// Replace the file with a database that has no uncertain E atoms:
	// the query's reliability changes, so a stale cache is observable.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := store.BuildFromDB(path, testDB(t, 4, 0), store.Options{PageSize: 256}, 0, nil); err != nil {
		t.Fatal(err)
	}
	// Force a distinct mtime even on coarse-grained filesystems.
	bump := time.Now().Add(2 * time.Hour)
	if err := os.Chtimes(path, bump, bump); err != nil {
		t.Fatal(err)
	}
	status, second, ec, _ := post(t, ts.URL, Request{Store: "g.qstore", Query: q, Engine: "world-enum"})
	if status != http.StatusOK {
		t.Fatalf("request after replacement: status %d (%+v)", status, ec)
	}
	if first.RExact == "" || second.RExact == "" || first.RExact == second.RExact {
		t.Errorf("replaced store served stale data: R before %q, after %q", first.RExact, second.RExact)
	}
}

func TestStoreLoadFailureIsNotCached(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.qstore")
	if err := os.WriteFile(path, []byte("not a store file"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{StoreDir: dir})
	if status, _, _, _ := post(t, ts.URL, Request{Store: "g.qstore", Query: "S(x)"}); status == 200 {
		t.Fatal("garbage store file accepted")
	}
	// Replacing the broken file must let the same name succeed: failures
	// are not cached.
	if err := store.BuildFromDB(path, testDB(t, 4, 3), store.Options{PageSize: 256}, 0, nil); err != nil {
		t.Fatal(err)
	}
	if status, _, ec, _ := post(t, ts.URL, Request{Store: "g.qstore", Query: "exists x . S(x)"}); status != 200 {
		t.Errorf("after replacing broken file: status %d (%+v)", status, ec)
	}
}
