package server

import (
	"errors"
	"net/http"
	"testing"

	"qrel/internal/faultinject"
)

// TestEvalModeGaugesAndFallbackCounter exercises the serving-layer half
// of the compiled-evaluation work: the request's eval knob reaches the
// engine, the response reports the resolved mode, /statz splits the
// per-engine throughput gauges by mode, and a forced compile failure
// increments compile_fallbacks while the run itself still succeeds.
func TestEvalModeGaugesAndFallbackCounter(t *testing.T) {
	defer faultinject.Reset()
	s, ts := newTestServer(t, Config{})
	req := Request{DB: "g", Query: "E(x,y) & S(x)", Engine: "monte-carlo-direct",
		Eps: 0.05, Delta: 0.1, Seed: 5}

	req.Eval = "compiled"
	status, compiled, _, _ := post(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("compiled run: status %d", status)
	}
	if compiled.EvalMode != "compiled" {
		t.Fatalf("compiled run reports eval_mode %q", compiled.EvalMode)
	}

	req.Eval = "interpreted"
	status, interp, _, _ := post(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("interpreted run: status %d", status)
	}
	if interp.EvalMode != "interpreted" {
		t.Fatalf("interpreted run reports eval_mode %q", interp.EvalMode)
	}
	// Same seed, same query: the two modes are bit-identical end to end.
	if compiled.R != interp.R || compiled.Samples != interp.Samples {
		t.Fatalf("compiled (r=%v n=%d) != interpreted (r=%v n=%d)",
			compiled.R, compiled.Samples, interp.R, interp.Samples)
	}

	eng, ok := s.Statz().Engines["monte-carlo-direct"]
	if !ok {
		t.Fatal("no engine gauges for monte-carlo-direct")
	}
	if eng.Runs != 2 || eng.Samples != int64(compiled.Samples+interp.Samples) {
		t.Fatalf("engine totals runs=%d samples=%d, want 2 runs / %d samples",
			eng.Runs, eng.Samples, compiled.Samples+interp.Samples)
	}
	for mode, res := range map[string]*Response{"compiled": compiled, "interpreted": interp} {
		ev, ok := eng.Eval[mode]
		if !ok {
			t.Fatalf("no %s gauge bundle; eval map %v", mode, eng.Eval)
		}
		if ev.Runs != 1 || ev.Samples != int64(res.Samples) {
			t.Fatalf("%s gauges runs=%d samples=%d, want 1 run / %d samples",
				mode, ev.Runs, ev.Samples, res.Samples)
		}
		if ev.BusyMS < 0 || ev.SamplesPerSec < 0 {
			t.Fatalf("%s gauges negative: %+v", mode, ev)
		}
	}
	if got := s.Statz().CompileFallbacks; got != 0 {
		t.Fatalf("compile_fallbacks = %d before any fault, want 0", got)
	}

	// A compile fault forces the interpreter mid-admission: the request
	// still succeeds, the mode degrades, and the counter ticks.
	faultinject.Enable(faultinject.SiteVMCompile, faultinject.Fault{Err: errors.New("injected compile failure")})
	req.Eval = "compiled"
	status, fell, _, _ := post(t, ts.URL, req)
	faultinject.Reset()
	if status != http.StatusOK {
		t.Fatalf("run with compile fault: status %d", status)
	}
	if fell.EvalMode != "interpreted" {
		t.Fatalf("faulted run reports eval_mode %q, want interpreted", fell.EvalMode)
	}
	if fell.R != interp.R || fell.Samples != interp.Samples {
		t.Fatalf("faulted fallback run (r=%v n=%d) != interpreted (r=%v n=%d)",
			fell.R, fell.Samples, interp.R, interp.Samples)
	}
	if got := s.Statz().CompileFallbacks; got != 1 {
		t.Fatalf("compile_fallbacks = %d after forced fallback, want 1", got)
	}
	if ev := s.Statz().Engines["monte-carlo-direct"].Eval["interpreted"]; ev.Runs != 2 {
		t.Fatalf("interpreted gauge runs = %d after fallback run, want 2", ev.Runs)
	}
}

func TestUnknownEvalModeRejectedAtAdmission(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, _, ec, _ := post(t, ts.URL, Request{DB: "g", Query: "S(x)", Eval: "bogus"})
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", status)
	}
	if ec == nil || ec.Kind != KindBadRequest {
		t.Fatalf("error %+v, want kind %q", ec, KindBadRequest)
	}
}
