package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math/big"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"qrel/internal/faultinject"
	"qrel/internal/rel"
	"qrel/internal/testutil"
	"qrel/internal/unreliable"
)

// testDB builds a small graph database with the given number of
// uncertain edge atoms.
func testDB(t *testing.T, n, uncertain int) *unreliable.DB {
	t.Helper()
	voc := rel.MustVocabulary(rel.RelSym{Name: "E", Arity: 2}, rel.RelSym{Name: "S", Arity: 1})
	s := rel.MustStructure(n, voc)
	s.MustAdd("S", 0)
	rng := rand.New(rand.NewSource(1))
	db := unreliable.New(s)
	added := 0
	for added < uncertain {
		a, b := rng.Intn(n), rng.Intn(n)
		atom := rel.GroundAtom{Rel: "E", Args: rel.Tuple{a, b}}
		if db.ErrorProb(atom).Sign() != 0 {
			continue
		}
		db.MustSetError(atom, big.NewRat(1, 4))
		added++
	}
	return db
}

// newTestServer builds a server + httptest frontend and registers the
// "g" database.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	// Registered before the shutdown cleanup below so the leak check runs
	// after the server (and any others the test built) has closed.
	testutil.CheckGoroutineLeaks(t)
	s := New(cfg)
	s.Register("g", testDB(t, 4, 3))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// post sends one reliability request and decodes the result or error.
func post(t *testing.T, url string, req Request) (int, *Response, *ErrorResponse, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/reliability", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var out Response
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, &out, nil, resp.Header
	}
	var ec ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&ec); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, nil, &ec, resp.Header
}

func TestReliabilityEndpointBasic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, res, _, _ := post(t, ts.URL, Request{DB: "g", Query: "exists x y . E(x,y)"})
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200", status)
	}
	if res.Engine == "" || res.Guarantee == "" || res.RExact == "" {
		t.Errorf("incomplete response: %+v", res)
	}
	if res.R < 0 || res.R > 1 {
		t.Errorf("reliability %v out of range", res.R)
	}
	// Inline databases work too.
	status, res2, _, _ := post(t, ts.URL, Request{
		DBText: "universe 2\nrel S/1\nS 0 err 1/2\n",
		Query:  "exists x . S(x)",
	})
	if status != http.StatusOK {
		t.Fatalf("inline db status %d, want 200", status)
	}
	if res2.RExact != "1/2" {
		t.Errorf("inline R = %q, want 1/2", res2.RExact)
	}
}

func TestErrorStatusMapping(t *testing.T) {
	defer faultinject.Reset()
	_, ts := newTestServer(t, Config{})
	secondOrder := "existsrel C/1 . exists x . C(x)"
	cases := []struct {
		name   string
		req    Request
		status int
		kind   string
	}{
		{"missing query", Request{DB: "g"}, 400, KindBadRequest},
		{"unknown db", Request{DB: "nope", Query: "S(x)"}, 404, KindNotFound},
		{"both dbs", Request{DB: "g", DBText: "universe 0\n", Query: "S(x)"}, 400, KindBadRequest},
		{"bad query", Request{DB: "g", Query: "exists . ("}, 400, KindBadRequest},
		{"bad inline db", Request{DBText: "universe x\n", Query: "S(x)"}, 400, KindBadRequest},
		{"unknown engine", Request{DB: "g", Query: "S(x)", Engine: "warp-drive"}, 400, KindBadRequest},
		{"bad eps", Request{DB: "g", Query: "S(x)", Eps: 1.5}, 400, KindBadRequest},
		{"budget exceeded", Request{DB: "g", Query: "exists x y . E(x,y)",
			Engine: "world-enum", MaxWorlds: 2}, 413, KindBudget},
		{"infeasible", Request{DB: "g", Query: secondOrder, MaxWorlds: 2}, 422, KindInfeasible},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, ec, _ := post(t, ts.URL, tc.req)
			if status != tc.status {
				t.Fatalf("status %d, want %d (%v)", status, tc.status, ec)
			}
			if ec.Kind != tc.kind {
				t.Errorf("kind %q, want %q", ec.Kind, tc.kind)
			}
		})
	}

	// ErrCanceled → 408: a 1ms budget on a query slow enough to overrun it.
	t.Run("canceled", func(t *testing.T) {
		defer faultinject.Reset()
		faultinject.Enable(faultinject.SiteServerHandle, faultinject.Fault{Delay: 30 * time.Millisecond})
		status, _, ec, _ := post(t, ts.URL, Request{DB: "g", Query: "exists x y . E(x,y)", TimeoutMS: 1})
		if status != http.StatusRequestTimeout {
			t.Fatalf("status %d, want 408 (%v)", status, ec)
		}
		if ec.Kind != KindCanceled {
			t.Errorf("kind %q, want %q", ec.Kind, KindCanceled)
		}
	})

	// ErrEngineFailed → 500: every rung of the qfree ladder crashing.
	t.Run("engine failed", func(t *testing.T) {
		defer faultinject.Reset()
		faultinject.Enable(faultinject.SiteQFree, faultinject.Fault{Panic: "boom"})
		status, _, ec, _ := post(t, ts.URL, Request{DB: "g", Query: "S(x)", Engine: "qfree"})
		if status != http.StatusInternalServerError {
			t.Fatalf("status %d, want 500 (%v)", status, ec)
		}
		if ec.Kind != KindEngineFailed {
			t.Errorf("kind %q, want %q", ec.Kind, KindEngineFailed)
		}
	})
}

// TestShedAtCapacity saturates a 1-worker/1-slot server with slow
// requests and checks the overflow is shed with 503 + Retry-After
// instead of queueing unboundedly.
func TestShedAtCapacity(t *testing.T) {
	defer faultinject.Reset()
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	faultinject.Enable(faultinject.SiteServerHandle, faultinject.Fault{Delay: 150 * time.Millisecond})

	const burst = 8
	var (
		mu       sync.Mutex
		ok, shed int
	)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _, ec, hdr := post(t, ts.URL, Request{DB: "g", Query: "exists x y . E(x,y)"})
			mu.Lock()
			defer mu.Unlock()
			switch status {
			case http.StatusOK:
				ok++
			case http.StatusServiceUnavailable:
				shed++
				if hdr.Get("Retry-After") == "" {
					t.Error("503 without Retry-After")
				}
				if ec.Kind != KindShedding {
					t.Errorf("kind %q, want %q", ec.Kind, KindShedding)
				}
			default:
				t.Errorf("unexpected status %d", status)
			}
		}()
	}
	wg.Wait()
	if ok == 0 || shed == 0 {
		t.Fatalf("ok=%d shed=%d, want both nonzero", ok, shed)
	}
	// With 1 worker and 1 queue slot, at most 2 of the burst are ever
	// admitted at once; the rest of the concurrent burst must shed.
	if got := s.Statz(); got.Shed != int64(shed) || got.Accepted != int64(ok) {
		t.Errorf("statz accepted=%d shed=%d, want %d/%d", got.Accepted, got.Shed, ok, shed)
	}
}

// TestBreakerTripsAndRecovers drives the qfree rung into repeated
// panics until its breaker opens (the rung is skipped, not run), then
// heals the engine and checks a half-open probe closes the breaker.
func TestBreakerTripsAndRecovers(t *testing.T) {
	defer faultinject.Reset()
	_, ts := newTestServer(t, Config{Breaker: BreakerConfig{Threshold: 2, Cooldown: 50 * time.Millisecond}})
	faultinject.Enable(faultinject.SiteQFree, faultinject.Fault{Panic: "qfree down"})

	req := Request{DB: "g", Query: "S(x)"} // quantifier-free: ladder starts at qfree
	// Two crashing runs trip the threshold-2 breaker. Both still succeed
	// via the next rung, with the crash recorded in the trail.
	for i := 0; i < 2; i++ {
		status, res, _, _ := post(t, ts.URL, req)
		if status != http.StatusOK {
			t.Fatalf("run %d: status %d, want 200", i, status)
		}
		if len(res.FallbackTrail) == 0 || !strings.Contains(res.FallbackTrail[0].Err, "panicked") {
			t.Fatalf("run %d: trail %v, want a qfree panic step", i, res.FallbackTrail)
		}
		if i == 0 {
			// One crash in: /statz shows the streak building while the
			// breaker is still closed.
			var mid Statz
			getJSON(t, ts.URL+"/statz", &mid)
			if b := mid.Breakers["qfree"]; b.State != breakerClosed || b.ConsecutiveFailures != 1 {
				t.Fatalf("after 1 crash, breaker %+v, want closed with 1 consecutive failure", b)
			}
		}
	}
	// Third run: the breaker is open, so the rung is skipped — the trail
	// records the skip and the armed panic site is never reached.
	status, res, _, _ := post(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200", status)
	}
	if len(res.FallbackTrail) == 0 || res.FallbackTrail[0].Err != "skipped: circuit breaker open" {
		t.Fatalf("trail %v, want a breaker-skip step", res.FallbackTrail)
	}
	var statz Statz
	getJSON(t, ts.URL+"/statz", &statz)
	if b := statz.Breakers["qfree"]; b.State != breakerOpen || b.Trips != 1 || b.ConsecutiveFailures != 2 {
		t.Fatalf("breaker %+v, want open with 1 trip and the streak frozen at 2", b)
	}
	if statz.ReplicaID == "" {
		t.Error("statz replica_id empty, want the hostname-pid default")
	}

	// Heal the engine and wait out the cooldown: the next request is the
	// half-open probe, runs qfree directly, and closes the breaker.
	faultinject.Reset()
	time.Sleep(60 * time.Millisecond)
	status, res, _, _ = post(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("post-recovery status %d, want 200", status)
	}
	if !strings.HasPrefix(res.Engine, "qfree") || len(res.FallbackTrail) != 0 {
		t.Fatalf("post-recovery engine %q trail %v, want qfree with empty trail", res.Engine, res.FallbackTrail)
	}
	getJSON(t, ts.URL+"/statz", &statz)
	if b := statz.Breakers["qfree"]; b.State != breakerClosed || b.ConsecutiveFailures != 0 {
		t.Fatalf("breaker %+v, want closed with the streak reset after the probe", b)
	}
}

// TestBreakerProbeFailureReopens checks the half-open → open edge.
func TestBreakerProbeFailureReopens(t *testing.T) {
	defer faultinject.Reset()
	s, ts := newTestServer(t, Config{Breaker: BreakerConfig{Threshold: 1, Cooldown: 30 * time.Millisecond}})
	faultinject.Enable(faultinject.SiteQFree, faultinject.Fault{Panic: "still down"})
	req := Request{DB: "g", Query: "S(x)"}
	post(t, ts.URL, req)              // trips (threshold 1)
	time.Sleep(40 * time.Millisecond) // cooldown elapses
	post(t, ts.URL, req)              // half-open probe crashes again
	if b := s.breakers.Snapshot()["qfree"]; b.State != breakerOpen || b.Trips != 2 {
		t.Fatalf("breaker %+v, want re-opened with 2 trips", b)
	}
}

// TestDrainFinishesInFlight checks that a drain lets in-flight work
// finish, rejects new work with 503/draining, and flips /readyz.
func TestDrainFinishesInFlight(t *testing.T) {
	defer faultinject.Reset()
	s, ts := newTestServer(t, Config{Workers: 2})
	faultinject.Enable(faultinject.SiteServerHandle, faultinject.Fault{Delay: 150 * time.Millisecond})

	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			status, _, _, _ := post(t, ts.URL, Request{DB: "g", Query: "exists x y . E(x,y)"})
			results <- status
		}()
	}
	time.Sleep(30 * time.Millisecond) // let both requests reach the workers

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(ctx) }()
	time.Sleep(10 * time.Millisecond) // let Drain flip the flag

	// New work is rejected while draining.
	status, _, ec, _ := post(t, ts.URL, Request{DB: "g", Query: "S(x)"})
	if status != http.StatusServiceUnavailable || ec.Kind != KindDraining {
		t.Fatalf("status %d kind %v, want 503/draining", status, ec)
	}
	if code := getStatus(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz %d while draining, want 503", code)
	}
	if code := getStatus(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz %d, want 200 (liveness is not readiness)", code)
	}

	// The in-flight pair still completes successfully.
	for i := 0; i < 2; i++ {
		if status := <-results; status != http.StatusOK {
			t.Errorf("in-flight request %d got %d, want 200", i, status)
		}
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := s.Statz(); got.InFlight != 0 || got.QueueDepth != 0 {
		t.Errorf("statz after drain: %+v, want empty queue and no in-flight", got)
	}
}

// TestDrainDeadlineCancelsInFlight checks the other half of the drain
// contract: when the deadline passes, in-flight computations are
// canceled (answered with 408) rather than stranded, and Drain returns.
func TestDrainDeadlineCancelsInFlight(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, DefaultTimeout: 30 * time.Second})
	// A genuinely slow computation that polls its context: second-order
	// evaluation over 2^16 worlds (many seconds if allowed to finish).
	slow := Request{
		DB:    "slow",
		Query: "existsrel C/1 . (exists x . C(x)) & (forall x y . C(x) & E(x,y) -> C(y))",
	}
	s.Register("slow", testDB(t, 5, 16))

	result := make(chan int, 1)
	go func() {
		status, _, _, _ := post(t, ts.URL, slow)
		result <- status
	}()
	time.Sleep(50 * time.Millisecond) // let it reach the worker

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Drain(ctx)
	if err == nil {
		t.Fatal("drain returned nil, want a deadline-hit error")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("drain took %v after a 100ms deadline; in-flight work did not cancel", elapsed)
	}
	if status := <-result; status != http.StatusRequestTimeout {
		t.Errorf("canceled in-flight request got %d, want 408", status)
	}
}

// TestStatzCounters sanity-checks the outcome partition.
func TestStatzCounters(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	post(t, ts.URL, Request{DB: "g", Query: "S(x)"})
	post(t, ts.URL, Request{DB: "g", Query: "exists x y . E(x,y)", Engine: "world-enum", MaxWorlds: 2})
	got := s.Statz()
	if got.Completed != 1 || got.Failed != 1 {
		t.Errorf("completed=%d failed=%d, want 1/1", got.Completed, got.Failed)
	}
	if got.Workers == 0 || got.QueueCapacity == 0 {
		t.Errorf("config echo missing: %+v", got)
	}
	if len(got.Databases) != 1 || got.Databases[0] != "g" {
		t.Errorf("databases %v, want [g]", got.Databases)
	}
}

// getJSON decodes a GET endpoint.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// getStatus returns a GET endpoint's status code.
func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}
