package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"

	"qrel/internal/checkpoint"
)

// Checkpoint shipping: lane-range sub-runs publish every snapshot they
// take as a CRC-framed payload, and the server keeps the freshest frame
// per run. A cluster coordinator picks frames up from the synchronous
// response (Response.Checkpoint) or, in jobs mode, by polling
// GET /v1/jobs/{id}/checkpoint — and re-plants them on a survivor via
// Request.Resume when the publishing replica dies, so the reassigned
// range continues from the last shipped sample boundary instead of
// sample zero.

// shipState holds the latest published checkpoint frame of one run.
// publish races with the estimator lanes; the largest sequence (total
// sample count) wins.
type shipState struct {
	mu    sync.Mutex
	frame []byte
	seq   int
}

func (sh *shipState) publish(seq int, frame []byte) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.frame == nil || seq > sh.seq {
		sh.frame, sh.seq = frame, seq
	}
}

// latest returns the freshest published frame (nil if none yet).
func (sh *shipState) latest() ([]byte, int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.frame, sh.seq
}

// JobCheckpoint is the JSON body of GET /v1/jobs/{id}/checkpoint: the
// freshest shipped checkpoint frame of a durable job.
type JobCheckpoint struct {
	ID string `json:"id"`
	// Seq is the total sample count the frame captures.
	Seq int `json:"seq"`
	// Frame is the CRC-framed snapshot (base64 on the wire), directly
	// usable as Request.Resume.
	Frame []byte `json:"frame"`
}

// handleJobCheckpoint is GET /v1/jobs/{id}/checkpoint: expose a durable
// job's freshest checkpoint frame. Falls back to the newest on-disk
// snapshot when the run has not published in this process (e.g. right
// after a restart), and 404s when the job has no snapshot at all yet.
func (s *Server) handleJobCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled() {
		writeError(w, http.StatusNotImplemented, KindJobsDisabled, "durable jobs are disabled (no checkpoint dir configured)")
		return
	}
	id := r.PathValue("id")
	s.jobMu.Lock()
	_, known := s.loadJob(id)
	sh := s.ships[id]
	s.jobMu.Unlock()
	if !known {
		writeError(w, http.StatusNotFound, KindNotFound, fmt.Sprintf("unknown job %q", id))
		return
	}
	var frame []byte
	var seq int
	if sh != nil {
		frame, seq = sh.latest()
	}
	if frame == nil {
		frame, seq = s.diskCheckpoint(id)
	}
	if frame == nil {
		writeError(w, http.StatusNotFound, KindNotFound, fmt.Sprintf("no checkpoint yet for job %q", id))
		return
	}
	s.stats.ckptServed.Add(1)
	writeJSON(w, http.StatusOK, &JobCheckpoint{ID: id, Seq: seq, Frame: frame})
}

// diskCheckpoint reads a job's newest on-disk snapshot and re-frames it
// for the wire. Returns (nil, 0) when there is none. The store is
// opened without metrics — serving a frame is not a resume.
func (s *Server) diskCheckpoint(id string) ([]byte, int) {
	store, err := checkpoint.Open(filepath.Join(s.jobDir(id), "ckpt"), checkpoint.Options{})
	if err != nil {
		return nil, 0
	}
	payload, err := store.LoadLatest()
	if err != nil {
		return nil, 0
	}
	var st struct {
		Samples int `json:"samples"`
	}
	_ = json.Unmarshal(payload, &st)
	return checkpoint.EncodeFrame(payload), st.Samples
}

// recordResumeOutcome tallies the fate of a request that carried a
// shipped resume frame: accepted (the run restored it) or rejected
// (fingerprint mismatch or corrupt frame).
func (s *Server) recordResumeOutcome(t *task) {
	cfg := t.opts.Checkpoint
	if cfg == nil || len(cfg.ResumeFrame) == 0 {
		return
	}
	switch {
	case t.err == nil && t.res.Resumed:
		s.stats.resumesAccepted.Add(1)
	case t.err != nil:
		if _, kind := statusFor(t.err); kind == KindCheckpoint {
			s.stats.resumesRejected.Add(1)
		}
	}
}

// ShippingStatz is the checkpoint-shipping section of Statz.
type ShippingStatz struct {
	// Shipped counts checkpoint frames published by lane-range runs;
	// Served counts GET /v1/jobs/{id}/checkpoint responses.
	Shipped int64 `json:"shipped"`
	Served  int64 `json:"served"`
	// ResumesReceived counts requests that carried a shipped resume
	// frame; Accepted/Rejected partition their fates (a run that failed
	// for unrelated reasons counts in neither).
	ResumesReceived int64 `json:"resumes_received"`
	ResumesAccepted int64 `json:"resumes_accepted"`
	ResumesRejected int64 `json:"resumes_rejected"`
}
