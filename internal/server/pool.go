package server

import (
	"context"
	"errors"
	"time"

	"qrel/internal/core"
	"qrel/internal/faultinject"
	"qrel/internal/logic"
	"qrel/internal/unreliable"
)

// task is one admitted reliability computation: the parsed inputs, and
// a done channel closed by the worker once res/err are set. The
// admitting handler goroutine blocks on done (or the client
// disconnecting) — computation happens only on pool workers, so
// concurrency is bounded by Config.Workers no matter how many HTTP
// connections are open.
type task struct {
	ctx    context.Context
	db     *unreliable.DB
	q      logic.Formula
	engine core.Engine // empty = auto dispatch
	opts   core.Options
	res    core.Result
	err    error
	done   chan struct{}
	// onDone, when set, runs on the worker after res/err are set and
	// before done closes — the hook durable jobs use to journal their
	// outcome (or, when the drain canceled them, to stay journaled as
	// running so a restart resumes them).
	onDone func(*task)
	// ship, set on lane-range tasks, receives the run's published
	// checkpoint frames; the freshest is attached to the response and
	// served by GET /v1/jobs/{id}/checkpoint.
	ship *shipState
}

// startWorkers launches the bounded worker pool. Workers run until
// stopWorkers is closed, which Drain does only after every admitted
// task has finished — a worker never abandons a queued task.
func (s *Server) startWorkers() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			for {
				select {
				case t := <-s.tasks:
					s.runTask(t)
				case <-s.stopWorkers:
					return
				}
			}
		}()
	}
}

// admit places a task in the bounded queue without blocking. False
// means the queue is full: the caller sheds the request with 503.
func (s *Server) admit(t *task) bool {
	s.taskWG.Add(1)
	select {
	case s.tasks <- t:
		s.stats.accepted.Add(1)
		return true
	default:
		s.taskWG.Done()
		s.stats.shed.Add(1)
		return false
	}
}

// runTask executes one computation on a pool worker.
func (s *Server) runTask(t *task) {
	defer s.taskWG.Done()
	defer close(t.done)
	s.stats.inflight.Add(1)
	defer s.stats.inflight.Add(-1)
	if err := faultinject.Hit(faultinject.SiteServerHandle); err != nil {
		t.err = err
	} else {
		started := time.Now()
		t.res, t.err = core.ReliabilityWith(t.ctx, t.engine, t.db, t.q, t.opts)
		if t.err == nil {
			s.stats.recordEngine(t.res.Engine, t.res.EvalMode, t.res.Samples, time.Since(started))
			for _, step := range t.res.FallbackTrail {
				if step.Engine == "vm" {
					s.stats.compileFallbacks.Add(1)
					break
				}
			}
		}
		// Byzantine-replica window: perturb a raw lane aggregate after the
		// computation but before toResponse renders it, so the attestation
		// digest covers the corrupt value and only a cross-replica audit
		// can notice. Sum is the one field the coordinator's merge does not
		// plausibility-check. Covers both the sync and durable-job paths
		// (both render t.res via toResponse).
		if t.err == nil && t.res.LaneRange != nil && len(t.res.LaneRange.Lanes) > 0 {
			if s.cfg.ComputeCorrupt || faultinject.Hit(faultinject.SiteClusterComputeCorrupt) != nil {
				t.res.LaneRange.Lanes[0].Sum += 0.5
				s.stats.computeCorrupted.Add(1)
			}
		}
	}
	switch {
	case t.err == nil:
		s.stats.completed.Add(1)
	case errors.Is(t.err, core.ErrCanceled):
		s.stats.canceled.Add(1)
	default:
		s.stats.failed.Add(1)
	}
	s.recordResumeOutcome(t)
	if t.onDone != nil {
		t.onDone(t)
	}
}
