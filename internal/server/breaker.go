package server

import (
	"errors"
	"sync"
	"time"

	"qrel/internal/core"
)

// BreakerConfig tunes the per-engine circuit breakers.
type BreakerConfig struct {
	// Threshold is the number of consecutive ErrEngineFailed outcomes
	// (panic recoveries) that trips a rung's breaker. Default 3.
	Threshold int
	// Cooldown is how long a tripped breaker stays open before admitting
	// a single half-open probe. Default 5s.
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

// Breaker states.
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

// rungBreaker is the health record of one dispatch rung.
type rungBreaker struct {
	state    string
	failures int // consecutive ErrEngineFailed outcomes while closed
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	trips    int64
}

// Breakers is a set of per-engine circuit breakers implementing
// core.RungBreaker. One instance is shared by every in-flight request
// of a server, so an engine that keeps crashing — for any caller — is
// skipped process-wide until a half-open probe succeeds.
//
// State machine per rung: closed (healthy; Threshold consecutive
// ErrEngineFailed outcomes trip it) → open (vetoes the rung for
// Cooldown) → half-open (admits exactly one probe; success closes,
// failure re-opens). Outcomes other than ErrEngineFailed — success,
// budget exhaustion, fragment mismatch — count as health: the engine
// ran and did not crash.
type Breakers struct {
	mu    sync.Mutex
	cfg   BreakerConfig
	now   func() time.Time // injectable clock for tests
	rungs map[core.Engine]*rungBreaker
}

// NewBreakers builds a breaker set with the given configuration.
func NewBreakers(cfg BreakerConfig) *Breakers {
	return &Breakers{cfg: cfg.withDefaults(), now: time.Now, rungs: map[core.Engine]*rungBreaker{}}
}

// rung returns (creating if needed) the record for an engine.
// Caller holds b.mu.
func (b *Breakers) rung(e core.Engine) *rungBreaker {
	r, ok := b.rungs[e]
	if !ok {
		r = &rungBreaker{state: breakerClosed}
		b.rungs[e] = r
	}
	return r
}

// Allow implements core.RungBreaker: closed rungs run; open rungs are
// vetoed until the cooldown elapses, at which point exactly one caller
// is admitted as the half-open probe.
func (b *Breakers) Allow(e core.Engine) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	r := b.rung(e)
	switch r.state {
	case breakerOpen:
		if b.now().Sub(r.openedAt) < b.cfg.Cooldown {
			return false
		}
		r.state = breakerHalfOpen
		r.probing = true
		return true
	case breakerHalfOpen:
		if r.probing {
			return false
		}
		r.probing = true
		return true
	default:
		return true
	}
}

// Report implements core.RungBreaker, observing the outcome of a rung
// that actually ran.
func (b *Breakers) Report(e core.Engine, err error) {
	crashed := err != nil && errors.Is(err, core.ErrEngineFailed)
	b.mu.Lock()
	defer b.mu.Unlock()
	r := b.rung(e)
	switch r.state {
	case breakerHalfOpen:
		r.probing = false
		if crashed {
			r.state = breakerOpen
			r.openedAt = b.now()
			r.trips++
		} else {
			r.state = breakerClosed
			r.failures = 0
		}
	case breakerClosed:
		if !crashed {
			r.failures = 0
			return
		}
		r.failures++
		if r.failures >= b.cfg.Threshold {
			r.state = breakerOpen
			r.openedAt = b.now()
			r.trips++
		}
	default:
		// A straggler report for a rung that tripped while it was
		// running: keep the breaker open, refreshing the cooldown only
		// on further crashes.
		if crashed {
			r.openedAt = b.now()
		}
	}
}

// BreakerStatz is the /statz rendering of one rung's breaker.
type BreakerStatz struct {
	State string `json:"state"`
	// ConsecutiveFailures is the current crash streak (closed state).
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Trips counts closed→open transitions since startup.
	Trips int64 `json:"trips"`
}

// Snapshot returns the current breaker states keyed by engine name.
// Engines that have never run are absent.
func (b *Breakers) Snapshot() map[string]BreakerStatz {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]BreakerStatz, len(b.rungs))
	for e, r := range b.rungs {
		out[string(e)] = BreakerStatz{State: r.state, ConsecutiveFailures: r.failures, Trips: r.trips}
	}
	return out
}
