// Package server exposes the qrel reliability engines as a
// self-protecting HTTP/JSON service. The design goal is robustness by
// construction: every request runs through a bounded worker pool fed by
// a bounded admission queue (overflow is shed with 503 + Retry-After —
// never an unbounded goroutine), per-request deadlines map onto
// core.Budget so queueing time counts against the caller's allowance,
// the PR 1 typed error taxonomy maps onto HTTP statuses, per-engine
// circuit breakers skip dispatch rungs that keep crashing (with
// half-open probes to recover), and Drain stops admission and finishes
// or cancels in-flight work under a deadline so a SIGTERM never strands
// a request.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qrel/internal/checkpoint"
	"qrel/internal/core"
	"qrel/internal/faultinject"
	"qrel/internal/logic"
	"qrel/internal/mc"
	"qrel/internal/store"
	"qrel/internal/unreliable"
)

// Config tunes the server. The zero value is usable: every field has a
// production-safe default.
type Config struct {
	// Workers is the number of pool workers — the hard bound on
	// concurrent reliability computations. Default 4.
	Workers int
	// QueueDepth is the admission queue capacity; a full queue sheds new
	// requests with 503. Default 64.
	QueueDepth int
	// DefaultTimeout is the per-request wall-clock budget applied when
	// the request does not carry one. Default 10s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps the per-request budget a caller may ask for.
	// Default 60s.
	MaxTimeout time.Duration
	// RetryAfter is the backoff hint attached to 503 responses.
	// Default 1s.
	RetryAfter time.Duration
	// MaxBodyBytes bounds the request body (inline databases included).
	// Default 4 MiB.
	MaxBodyBytes int64
	// Breaker configures the per-engine circuit breakers.
	Breaker BreakerConfig
	// MaxEnumAtoms caps exact world enumeration per request (zero keeps
	// the core default).
	MaxEnumAtoms int
	// CheckpointDir is the root directory for durable jobs: each job gets
	// a journal plus a crash-safe snapshot store under it, and a restart
	// scans it to resume interrupted jobs (see RecoverJobs). Empty
	// disables the /v1/jobs API.
	CheckpointDir string
	// CheckpointEvery is the number of samples between job snapshots
	// (zero uses core.DefaultCheckpointEvery).
	CheckpointEvery int
	// StoreDir is the root directory for paged store files that
	// requests may name with the "store" field. The path in the request
	// is resolved strictly underneath it — absolute paths and ".."
	// escapes are rejected. Empty disables the field.
	StoreDir string
	// ReplicaID identifies this server instance in /statz so cluster
	// coordinators and operators can tell replicas apart. Default
	// "<hostname>-<pid>".
	ReplicaID string
	// DefaultEval is the evaluation mode applied to requests that do not
	// pick one ("", "auto", "compiled", or "interpreted"). The modes are
	// bit-identical, so replicas of one cluster may be configured
	// differently — a mixed-version fleet — without breaking lane merges
	// or attestation.
	DefaultEval string
	// ComputeCorrupt, when set, silently perturbs one lane aggregate of
	// every successful lane-range computation before the result (and its
	// attestation digest) is rendered — a persistent Byzantine replica.
	// Chaos/testing hook only: it exists so a cluster harness can run one
	// lying replica in-process (the faultinject registry is process-wide
	// and cannot scope a fault to a single replica) and prove the
	// coordinator's audits catch and quarantine it.
	ComputeCorrupt bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.ReplicaID == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "qreld"
		}
		c.ReplicaID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	return c
}

// Server is the reliability service. Create with New, mount Handler on
// an http.Server, and call Drain (then Close) to shut down.
type Server struct {
	cfg      Config
	breakers *Breakers
	stats    stats
	start    time.Time

	tasks       chan *task
	stopWorkers chan struct{}
	workerWG    sync.WaitGroup // pool workers
	taskWG      sync.WaitGroup // admitted, unfinished tasks

	// drainMu makes the draining check-and-admit atomic against Drain,
	// so no task is admitted (taskWG.Add) after Drain began waiting.
	drainMu  sync.RWMutex
	draining atomic.Bool

	// baseCtx cancels every in-flight computation when the drain
	// deadline expires (or on Close).
	baseCtx    context.Context
	baseCancel context.CancelFunc

	dbMu sync.RWMutex
	dbs  map[string]*unreliable.DB

	// storeMu guards the storeEntries map only (keyed by the request's
	// store name). Loading happens under the entry's own lock — a
	// per-name singleflight — so one slow load never blocks requests
	// for other stores. A cached database is revalidated against the
	// file's (mtime, size) on every request, so a store file replaced
	// on disk serves its new contents; a load failure is NOT cached:
	// an operator can replace the file and retry.
	storeMu      sync.Mutex
	storeEntries map[string]*storeEntry

	// Durable-job state (nil maps/zero values when CheckpointDir is
	// unset). jobMu guards jobs and ships; ckptMetrics aggregates
	// snapshot-store counters across every job for /statz. ships holds
	// the live shipped-checkpoint state of lane-range jobs, keyed by job
	// ID (see ship.go).
	jobMu       sync.Mutex
	jobs        map[string]*JobStatus
	ships       map[string]*shipState
	ckptMetrics checkpoint.Metrics
}

// New creates a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		breakers:    NewBreakers(cfg.Breaker),
		start:       time.Now(),
		tasks:       make(chan *task, cfg.QueueDepth),
		stopWorkers: make(chan struct{}),
		dbs:         map[string]*unreliable.DB{},
		storeEntries: map[string]*storeEntry{},
		jobs:        map[string]*JobStatus{},
		ships:       map[string]*shipState{},
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.startWorkers()
	return s
}

// Register adds a named database. Registered databases are shared by
// concurrent requests and must not be mutated afterwards; Register
// warms the lazily built uncertain-atom caches so later concurrent
// reads are safe.
func (s *Server) Register(name string, db *unreliable.DB) {
	db.NumUncertain() // force the lazy refresh now, single-threaded
	s.dbMu.Lock()
	defer s.dbMu.Unlock()
	s.dbs[name] = db
}

// DatabaseNames lists the registered databases, sorted.
func (s *Server) DatabaseNames() []string {
	s.dbMu.RLock()
	defer s.dbMu.RUnlock()
	names := make([]string, 0, len(s.dbs))
	for n := range s.dbs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// lookup resolves a registered database.
func (s *Server) lookup(name string) (*unreliable.DB, bool) {
	s.dbMu.RLock()
	defer s.dbMu.RUnlock()
	db, ok := s.dbs[name]
	return db, ok
}

// storeEntry caches one store file's loaded database together with
// the file identity (mtime, size) it was loaded from. Each entry has
// its own lock, so a slow load serializes only requests for the same
// store name.
type storeEntry struct {
	mu    sync.Mutex
	db    *unreliable.DB
	mtime time.Time
	size  int64
}

// loadStore resolves a request's store name strictly under StoreDir,
// opens the file (running journal recovery), loads the database, and
// caches it keyed by the file's (mtime, size) so a replaced file is
// reloaded. Returns HTTP status and error kind on failure.
func (s *Server) loadStore(name string) (*unreliable.DB, int, string, error) {
	if s.cfg.StoreDir == "" {
		return nil, http.StatusBadRequest, KindBadRequest, fmt.Errorf("\"store\" is disabled (no -store-dir configured)")
	}
	clean := filepath.Clean(name)
	if clean == "." || filepath.IsAbs(clean) || clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return nil, http.StatusBadRequest, KindBadRequest, fmt.Errorf("store name %q escapes the store directory", name)
	}
	s.storeMu.Lock()
	e := s.storeEntries[clean]
	if e == nil {
		e = &storeEntry{}
		s.storeEntries[clean] = e
	}
	s.storeMu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	path := filepath.Join(s.cfg.StoreDir, clean)
	fi, statErr := os.Stat(path)
	if e.db != nil {
		// Serve the cache while the file is unchanged — or gone: a
		// loaded store outlives its file (operators may clean up), but
		// a replaced file must invalidate.
		if statErr != nil || (fi.ModTime().Equal(e.mtime) && fi.Size() == e.size) {
			return e.db, 0, "", nil
		}
	}
	if statErr != nil {
		if os.IsNotExist(statErr) {
			return nil, http.StatusNotFound, KindNotFound, fmt.Errorf("unknown store %q", name)
		}
		status, kind := statusFor(statErr)
		return nil, status, kind, fmt.Errorf("opening store %q: %w", name, statErr)
	}
	st, err := store.Open(path, store.Options{})
	if err != nil {
		if os.IsNotExist(err) {
			return nil, http.StatusNotFound, KindNotFound, fmt.Errorf("unknown store %q", name)
		}
		status, kind := statusFor(err)
		return nil, status, kind, fmt.Errorf("opening store %q: %w", name, err)
	}
	defer st.Close()
	db, err := st.LoadDB()
	if err != nil {
		status, kind := statusFor(err)
		return nil, status, kind, fmt.Errorf("loading store %q: %w", name, err)
	}
	db.NumUncertain() // warm the lazy caches single-threaded, as Register does
	// Record the identity after Open: journal recovery may have
	// rewritten the file, and the post-recovery (mtime, size) is what
	// later requests' stats will see.
	if fi2, err := os.Stat(path); err == nil {
		fi = fi2
	}
	e.db, e.mtime, e.size = db, fi.ModTime(), fi.Size()
	return e.db, 0, "", nil
}

// Handler returns the service mux:
//
//	POST /v1/reliability — run a reliability computation
//	POST /v1/jobs        — submit (or re-attach to) a durable job
//	GET  /v1/jobs/{id}   — poll a durable job
//	GET  /v1/jobs/{id}/checkpoint — fetch a job's freshest shipped checkpoint
//	GET  /healthz        — liveness (200 while the process runs)
//	GET  /readyz         — readiness (503 once draining)
//	GET  /statz          — JSON snapshot of queue/breaker/shed state
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/reliability", s.handleReliability)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", s.handleJobCheckpoint)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/statz", s.handleStatz)
	return mux
}

// Drain stops admission and waits for every admitted task to finish.
// If ctx expires first, all in-flight computations are canceled (they
// unwind promptly through the engines' context polling) and Drain keeps
// waiting for the — now fast — completions. On return no task is
// running or queued and the workers have exited; the HTTP listener can
// be shut down and the process can exit 0. Drain is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	first := !s.draining.Swap(true)
	s.drainMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.taskWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline: cancel in-flight work and wait for the unwinding.
		s.baseCancel()
		<-done
		err = fmt.Errorf("server: drain deadline hit; in-flight requests canceled: %w", ctx.Err())
	}
	if first {
		close(s.stopWorkers)
	}
	s.workerWG.Wait()
	return err
}

// Close shuts down immediately: admission stops, in-flight work is
// canceled, workers exit.
func (s *Server) Close() {
	s.baseCancel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Drain(ctx)
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes a one-error JSON body with the given status/kind.
func writeError(w http.ResponseWriter, status int, kind, msg string) {
	writeJSON(w, status, &ErrorResponse{Error: msg, Kind: kind})
}

// writeUnavailable sheds a request with 503 + Retry-After.
func (s *Server) writeUnavailable(w http.ResponseWriter, kind, msg string) {
	retry := s.cfg.RetryAfter
	w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
	writeJSON(w, http.StatusServiceUnavailable,
		&ErrorResponse{Error: msg, Kind: kind, RetryAfterMS: retry.Milliseconds()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, KindDraining, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Statz())
}

// parseRequest decodes and validates the request body, resolving the
// database and parsing the query. All failures here are the caller's
// fault: 400 or 404, before any queue slot is consumed.
func (s *Server) parseRequest(w http.ResponseWriter, r *http.Request) (*task, int, string, error) {
	req, status, kind, err := s.decodeRequest(w, r)
	if err != nil {
		return nil, status, kind, err
	}
	return s.buildTask(req)
}

// decodeRequest reads and unmarshals the JSON body.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*Request, int, string, error) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, http.StatusBadRequest, KindBadRequest, fmt.Errorf("decoding request: %w", err)
	}
	return &req, 0, "", nil
}

// buildTask validates a decoded request — resolving the database,
// parsing the query, assembling core.Options — and returns the pool
// task. Shared by the synchronous endpoint, job submission, and the
// startup job-recovery scan (which replays journaled requests).
func (s *Server) buildTask(req *Request) (*task, int, string, error) {
	if req.Query == "" {
		return nil, http.StatusBadRequest, KindBadRequest, fmt.Errorf("missing \"query\"")
	}
	var db *unreliable.DB
	nSrc := 0
	for _, set := range []bool{req.DB != "", req.DBText != "", req.Store != ""} {
		if set {
			nSrc++
		}
	}
	if nSrc != 1 {
		return nil, http.StatusBadRequest, KindBadRequest, fmt.Errorf("set exactly one of \"db\", \"db_text\" and \"store\"")
	}
	switch {
	case req.DB != "":
		var ok bool
		if db, ok = s.lookup(req.DB); !ok {
			return nil, http.StatusNotFound, KindNotFound, fmt.Errorf("unknown database %q", req.DB)
		}
	case req.DBText != "":
		var err error
		if db, err = unreliable.ParseDB(strings.NewReader(req.DBText)); err != nil {
			return nil, http.StatusBadRequest, KindBadRequest, fmt.Errorf("parsing db_text: %w", err)
		}
	default:
		var status int
		var kind string
		var err error
		if db, status, kind, err = s.loadStore(req.Store); err != nil {
			return nil, status, kind, err
		}
	}
	q, err := logic.Parse(req.Query, db.A.Voc)
	if err != nil {
		return nil, http.StatusBadRequest, KindBadRequest, fmt.Errorf("parsing query: %w", err)
	}
	if req.Eps < 0 || req.Eps >= 1 || req.Delta < 0 || req.Delta >= 1 {
		return nil, http.StatusBadRequest, KindBadRequest, fmt.Errorf("eps and delta must lie in [0,1)")
	}
	if req.Workers < 0 {
		return nil, http.StatusBadRequest, KindBadRequest, fmt.Errorf("workers must be >= 0")
	}
	// One job's sampling lanes must not oversubscribe the server's own
	// worker pool; the clamp cannot change the estimate (only scheduling
	// depends on the worker count).
	workers := req.Workers
	if workers > s.cfg.Workers {
		workers = s.cfg.Workers
	}
	engine := core.Engine(req.Engine)
	if !core.KnownEngine(engine) {
		return nil, http.StatusBadRequest, KindBadRequest, fmt.Errorf("unknown engine %q", req.Engine)
	}
	if !core.KnownEvalMode(req.Eval) {
		return nil, http.StatusBadRequest, KindBadRequest, fmt.Errorf("unknown eval mode %q", req.Eval)
	}
	eval := req.Eval
	if eval == "" {
		eval = s.cfg.DefaultEval
	}
	if !core.KnownEvalMode(eval) {
		return nil, http.StatusInternalServerError, KindEngineFailed, fmt.Errorf("server misconfigured: unknown default eval mode %q", eval)
	}
	var laneRange *mc.Range
	if req.Lanes != nil {
		if engine != core.EngineMCDirect {
			return nil, http.StatusBadRequest, KindBadRequest,
				fmt.Errorf("\"lanes\" requires engine %q, got %q", core.EngineMCDirect, req.Engine)
		}
		rng := mc.Range{Lo: req.Lanes.Lo, Hi: req.Lanes.Hi, Total: req.Lanes.Total}
		if err := rng.Validate(); err != nil {
			return nil, http.StatusBadRequest, KindBadRequest, err
		}
		laneRange = &rng
		// A lane-range run is always lane-split; give it at least one
		// worker even when the caller left workers at the sequential
		// default.
		if workers < 1 {
			workers = 1
		}
	}
	if len(req.Resume) > 0 && laneRange == nil {
		return nil, http.StatusBadRequest, KindBadRequest, fmt.Errorf("\"resume\" requires \"lanes\"")
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	opts := core.Options{
		Eps:          req.Eps,
		Delta:        req.Delta,
		Seed:         req.Seed,
		Eval:         eval,
		Workers:      workers,
		MaxEnumAtoms: s.cfg.MaxEnumAtoms,
		Breaker:      s.breakers,
		LaneRange:    laneRange,
		Budget: core.Budget{
			Timeout:     timeout,
			MaxSamples:  req.MaxSamples,
			MaxBDDNodes: req.MaxBDDNodes,
			MaxWorlds:   req.MaxWorlds,
		},
	}
	if len(req.Resume) > 0 {
		// Reject a doomed resume frame at admission, before a durable job
		// is registered under the request's idempotency key — the engine
		// would fail identically at startup, but by then the failed job
		// would be what every idempotent retry of the key re-attaches to.
		if err := core.ValidateResumeFrame(req.Resume, engine, q, opts); err != nil {
			status, kind := statusFor(err)
			return nil, status, kind, err
		}
	}
	t := &task{db: db, q: q, opts: opts, done: make(chan struct{}), engine: engine}
	if laneRange != nil {
		// Lane-range sub-runs ship their checkpoints and accept shipped
		// resume frames — the wire half of work-conserving reassignment.
		t.ship = &shipState{}
		ship := t.ship
		t.opts.Checkpoint = &core.CheckpointConfig{
			Every:       s.cfg.CheckpointEvery,
			ResumeFrame: req.Resume,
			Publish: func(seq int, frame []byte) {
				s.stats.ckptShipped.Add(1)
				ship.publish(seq, frame)
			},
		}
		if len(req.Resume) > 0 {
			s.stats.resumesReceived.Add(1)
		}
	}
	return t, 0, "", nil
}

// handleReliability is the admission path: parse, admit (or shed), then
// block until the worker finishes the task.
func (s *Server) handleReliability(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, KindBadRequest, "POST required")
		return
	}
	if err := faultinject.Hit(faultinject.SiteServerAdmit); err != nil {
		s.writeUnavailable(w, KindShedding, "injected admission fault: "+err.Error())
		s.stats.shed.Add(1)
		return
	}
	start := time.Now()
	t, status, kind, err := s.parseRequest(w, r)
	if err != nil {
		writeError(w, status, kind, err.Error())
		return
	}

	// The computation context: canceled by the client disconnecting, by
	// the drain deadline, and (inside core) by the budget timeout. The
	// deadline starts here, at admission, so queue wait counts against
	// the caller's allowance.
	ctx, cancel := context.WithTimeout(r.Context(), t.opts.Budget.Timeout)
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()
	t.ctx = ctx

	s.drainMu.RLock()
	if s.draining.Load() {
		s.drainMu.RUnlock()
		s.writeUnavailable(w, KindDraining, "server is draining")
		s.stats.drained.Add(1)
		return
	}
	admitted := s.admit(t)
	s.drainMu.RUnlock()
	if !admitted {
		s.writeUnavailable(w, KindShedding,
			fmt.Sprintf("admission queue full (%d queued, %d in flight)", cap(s.tasks), s.cfg.Workers))
		return
	}

	// The worker closes t.done even if the client goes away; waiting on
	// it (rather than racing r.Context) keeps accounting exact.
	<-t.done
	if t.err != nil {
		status, kind := statusFor(t.err)
		writeError(w, status, kind, t.err.Error())
		return
	}
	resp := toResponse(t.res, time.Since(start).Milliseconds())
	if t.ship != nil {
		// Ship the freshest checkpoint frame back: on a degraded response
		// it is the boundary the run stopped at, and the caller can resume
		// the remainder elsewhere instead of re-drawing it.
		if frame, seq := t.ship.latest(); frame != nil {
			resp.Checkpoint, resp.CheckpointSeq = frame, seq
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
