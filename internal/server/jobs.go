package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"qrel/internal/checkpoint"
	"qrel/internal/core"
)

// Durable jobs: POST /v1/jobs runs a reliability computation that
// survives process death. Each job owns a directory
// CheckpointDir/<id>/ holding a journal (job.json, written atomically)
// and a crash-safe snapshot store (ckpt/) that the engines write
// through core.CheckpointConfig. On startup RecoverJobs re-admits
// every job still journaled as running; because the snapshots pin the
// estimator's PRNG stream, the resumed run finishes bit-identical to
// one that was never interrupted.
//
// The job ID is derived from the client's idempotency key, so a client
// that crashed after submitting can blindly re-POST the same request:
// it re-attaches to the existing job instead of starting a duplicate.

// Job states of JobStatus.State.
const (
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// jobJournalName is the journal file inside a job directory.
const jobJournalName = "job.json"

// JobStatus is the JSON body of GET /v1/jobs/{id} and the on-disk job
// journal.
type JobStatus struct {
	// ID is the job identifier, derived from the idempotency key.
	ID string `json:"id"`
	// State is "running", "done", or "failed".
	State string `json:"state"`
	// Request is the journaled original request; a restart rebuilds the
	// computation from it.
	Request *Request `json:"request,omitempty"`
	// Result is the final estimate, set once State is "done".
	Result *Response `json:"result,omitempty"`
	// Error describes a failed job, set once State is "failed".
	Error *ErrorResponse `json:"error,omitempty"`
	// Resumes counts how many times the job was recovered after a
	// restart or kept resumable through a drain.
	Resumes int `json:"resumes"`
	// CreatedMS / UpdatedMS are Unix-milli journal timestamps.
	CreatedMS int64 `json:"created_unix_ms"`
	UpdatedMS int64 `json:"updated_unix_ms"`
}

// jobID derives the job identifier from the idempotency key.
func jobID(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])[:16]
}

// JobID is the exported form of the key→ID derivation, for callers
// (coordinators, tests) that need to locate a job's on-disk state from
// the idempotency key they submitted.
func JobID(key string) string { return jobID(key) }

// jobsEnabled reports whether durable jobs are configured.
func (s *Server) jobsEnabled() bool { return s.cfg.CheckpointDir != "" }

// jobDir returns the directory owned by one job.
func (s *Server) jobDir(id string) string { return filepath.Join(s.cfg.CheckpointDir, id) }

// journalJob writes st's journal atomically (write-temp + fsync +
// rename), so a crash mid-update can never leave a torn journal.
// Caller holds jobMu.
func (s *Server) journalJob(st *JobStatus) error {
	st.UpdatedMS = time.Now().UnixMilli()
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	return checkpoint.WriteFileAtomic(filepath.Join(s.jobDir(st.ID), jobJournalName), data)
}

// loadJob returns the job's status from memory, falling back to the
// on-disk journal (jobs finished in a previous process live only
// there). Caller holds jobMu.
func (s *Server) loadJob(id string) (*JobStatus, bool) {
	if st, ok := s.jobs[id]; ok {
		return st, true
	}
	data, err := os.ReadFile(filepath.Join(s.jobDir(id), jobJournalName))
	if err != nil {
		return nil, false
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, false
	}
	return &st, true
}

// jobTask rebuilds the pool task for a job from its journaled request
// and attaches the checkpoint store and the completion hook. The job
// context derives from baseCtx only — a disconnecting client must not
// cancel a durable job — and the wall-clock budget is taken verbatim
// from the request (zero = unlimited: durable jobs are the API for
// work that outlives request timeouts).
func (s *Server) jobTask(st *JobStatus) (*task, int, string, error) {
	t, status, kind, err := s.buildTask(st.Request)
	if err != nil {
		return nil, status, kind, err
	}
	t.opts.Budget.Timeout = time.Duration(st.Request.TimeoutMS) * time.Millisecond
	store, err := checkpoint.Open(filepath.Join(s.jobDir(st.ID), "ckpt"), checkpoint.Options{Metrics: &s.ckptMetrics})
	if err != nil {
		return nil, http.StatusInternalServerError, KindEngineFailed, fmt.Errorf("opening checkpoint store: %w", err)
	}
	// Merge rather than overwrite: a lane-range job's buildTask config
	// already carries the shipping hook and any wire resume frame; the
	// store and the wire frame both feed newCkptRun, where the fresher
	// snapshot wins.
	cfg := t.opts.Checkpoint
	if cfg == nil {
		cfg = &core.CheckpointConfig{Every: s.cfg.CheckpointEvery}
		t.opts.Checkpoint = cfg
	}
	cfg.Store = store
	cfg.Resume = true // a fresh store just starts fresh
	if t.ship != nil {
		s.ships[st.ID] = t.ship
	}
	t.ctx = s.baseCtx
	t.onDone = func(t *task) { s.finishJob(st, t) }
	return t, 0, "", nil
}

// finishJob journals a job's outcome from the worker. A job the drain
// canceled is deliberately NOT finalized: the engines took a final
// boundary snapshot when the context fired, so leaving the journal in
// state running makes the restart resume it — at full accuracy —
// instead of serving the degraded partial forever.
func (s *Server) finishJob(st *JobStatus, t *task) {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	drained := s.baseCtx.Err() != nil
	completedFully := t.err == nil && !t.res.Degraded
	switch {
	case drained && !completedFully:
		// Anything short of a full completion during a drain — a canceled
		// run, a degraded partial, even an engine error provoked by the
		// dying context — is left resumable rather than finalized.
		st.Resumes++
		s.stats.jobsSuspended.Add(1)
	case t.err != nil:
		st.State = JobFailed
		_, kind := statusFor(t.err)
		st.Error = &ErrorResponse{Error: t.err.Error(), Kind: kind}
		s.stats.jobsFailed.Add(1)
	default:
		st.State = JobDone
		st.Result = toResponse(t.res, time.Now().UnixMilli()-st.CreatedMS)
		if t.ship != nil {
			// Carry the final frame on the result for parity with the
			// synchronous path — a degraded job's remainder stays portable.
			if frame, seq := t.ship.latest(); frame != nil {
				st.Result.Checkpoint, st.Result.CheckpointSeq = frame, seq
			}
		}
		s.stats.jobsDone.Add(1)
	}
	if err := s.journalJob(st); err != nil {
		// The computation finished but its outcome could not be made
		// durable; the journal stays "running" and a restart recomputes
		// (checkpoints make that a cheap replay).
		st.State = JobRunning
		st.Result, st.Error = nil, nil
	}
}

// admitJob places a job task in the bounded queue, honoring draining,
// and journals the running state first so a crash between journal and
// completion is recovered. Caller holds jobMu.
func (s *Server) admitJob(st *JobStatus, t *task) (int, string, error) {
	if err := os.MkdirAll(s.jobDir(st.ID), 0o777); err != nil {
		return http.StatusInternalServerError, KindEngineFailed, err
	}
	if err := s.journalJob(st); err != nil {
		return http.StatusInternalServerError, KindEngineFailed, err
	}
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		s.stats.drained.Add(1)
		return http.StatusServiceUnavailable, KindDraining, fmt.Errorf("server is draining")
	}
	if !s.admit(t) {
		return http.StatusServiceUnavailable, KindShedding,
			fmt.Errorf("admission queue full (%d queued, %d in flight)", cap(s.tasks), s.cfg.Workers)
	}
	s.jobs[st.ID] = st
	return 0, "", nil
}

// handleJobSubmit is POST /v1/jobs: create a durable job, or re-attach
// to the existing one named by the idempotency key.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled() {
		writeError(w, http.StatusNotImplemented, KindJobsDisabled, "durable jobs are disabled (no checkpoint dir configured)")
		return
	}
	req, status, kind, err := s.decodeRequest(w, r)
	if err != nil {
		writeError(w, status, kind, err.Error())
		return
	}
	if req.IdempotencyKey == "" {
		writeError(w, http.StatusBadRequest, KindBadRequest, "missing \"idempotency_key\"")
		return
	}
	id := jobID(req.IdempotencyKey)

	s.jobMu.Lock()
	if st, ok := s.loadJob(id); ok {
		// Snapshot under the lock: the worker's finishJob may mutate the
		// shared status the instant the lock drops.
		snap := *st
		s.jobMu.Unlock()
		writeJSON(w, jobHTTPStatus(&snap), &snap)
		return
	}
	st := &JobStatus{ID: id, State: JobRunning, Request: req, CreatedMS: time.Now().UnixMilli()}
	t, status, kind, err := s.jobTask(st)
	if err != nil {
		s.jobMu.Unlock()
		writeError(w, status, kind, err.Error())
		return
	}
	status, kind, err = s.admitJob(st, t)
	snap := *st
	s.jobMu.Unlock()
	if err != nil {
		// Admission failed after the journal was written: remove the
		// stillborn job so a retry starts clean.
		_ = os.RemoveAll(s.jobDir(id))
		if status == http.StatusServiceUnavailable {
			s.writeUnavailable(w, kind, err.Error())
			return
		}
		writeError(w, status, kind, err.Error())
		return
	}
	s.stats.jobsSubmitted.Add(1)
	writeJSON(w, http.StatusAccepted, &snap)
}

// handleJobGet is GET /v1/jobs/{id}: poll a job. Running jobs answer
// 202, finished ones 200 with the journaled result or error.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled() {
		writeError(w, http.StatusNotImplemented, KindJobsDisabled, "durable jobs are disabled (no checkpoint dir configured)")
		return
	}
	id := r.PathValue("id")
	s.jobMu.Lock()
	st, ok := s.loadJob(id)
	var snap JobStatus
	if ok {
		snap = *st
	}
	s.jobMu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, KindNotFound, fmt.Sprintf("unknown job %q", id))
		return
	}
	writeJSON(w, jobHTTPStatus(&snap), &snap)
}

// jobHTTPStatus maps a job state to the HTTP status of its status
// responses.
func jobHTTPStatus(st *JobStatus) int {
	if st.State == JobRunning {
		return http.StatusAccepted
	}
	return http.StatusOK
}

// RecoverJobs scans CheckpointDir and re-admits every job whose
// journal is still in state running — jobs interrupted by a crash, a
// SIGKILL, or a drain that canceled them mid-flight. The databases
// jobs reference by name must be Registered first. Finished jobs are
// left on disk and served by GET /v1/jobs/{id} as before. Returns the
// number of jobs resumed; per-job failures (e.g. a journal referencing
// a database no longer registered) mark the job failed rather than
// aborting the scan.
func (s *Server) RecoverJobs() (int, error) {
	if !s.jobsEnabled() {
		return 0, nil
	}
	entries, err := os.ReadDir(s.cfg.CheckpointDir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	resumed := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		s.jobMu.Lock()
		st, ok := s.loadJob(e.Name())
		if !ok || st.State != JobRunning || st.ID != e.Name() {
			s.jobMu.Unlock()
			continue
		}
		st.Resumes++
		t, _, kind, err := s.jobTask(st)
		if err == nil {
			_, kind, err = s.admitJob(st, t)
		}
		if err != nil {
			st.State = JobFailed
			st.Error = &ErrorResponse{Error: fmt.Sprintf("recovery failed: %v", err), Kind: kind}
			_ = s.journalJob(st)
			s.stats.jobsFailed.Add(1)
			s.jobMu.Unlock()
			continue
		}
		resumed++
		s.stats.jobsRecovered.Add(1)
		s.jobMu.Unlock()
	}
	return resumed, nil
}
