package server

import (
	"errors"
	"net/http"

	"qrel/internal/checkpoint"
	"qrel/internal/core"
	"qrel/internal/mc"
	"qrel/internal/store"
)

// Request is the JSON body of POST /v1/reliability. Exactly one of DB
// (the name of a database registered with the server) or DBText (an
// inline database in the qrel text format) must be set.
type Request struct {
	// DB names a database registered with the server.
	DB string `json:"db,omitempty"`
	// DBText is an inline unreliable database in the qrel text format.
	DBText string `json:"db_text,omitempty"`
	// Store names a paged store file (mkdb -store) relative to the
	// server's -store-dir. The file is opened with journal recovery,
	// loaded once, and cached; a checksum failure anywhere in it fails
	// the request with kind "corrupt-store" rather than serving an
	// estimate from fabricated tuples.
	Store string `json:"store,omitempty"`
	// Query is the query in qrel syntax.
	Query string `json:"query"`
	// Engine selects an engine ("auto" or empty dispatches on the query
	// class).
	Engine string `json:"engine,omitempty"`
	// Eval selects the sampling evaluation mode: "auto" or empty
	// (compile the query to world-VM bytecode, falling back to the
	// interpreter for shapes that don't compile), "compiled", or
	// "interpreted". The modes are bit-identical for a fixed seed —
	// estimates, checkpoints, and lane digests all match — so replicas
	// of one cluster fan-out may disagree on it freely; the knob exists
	// for throughput comparisons and chaos drills.
	Eval string `json:"eval,omitempty"`
	// Eps, Delta are the randomized-guarantee parameters (defaulted by
	// the engines when zero).
	Eps   float64 `json:"eps,omitempty"`
	Delta float64 `json:"delta,omitempty"`
	// Seed seeds the deterministic RNG of randomized engines.
	Seed int64 `json:"seed,omitempty"`
	// Workers > 0 runs randomized engines on the lane-split parallel
	// sampling runtime with up to this many goroutines. The estimate is
	// bit-identical for any Workers >= 1 (lanes, not workers, determine
	// it), so callers can vary it freely between runs of the same job.
	// Clamped to the server's own pool width so one job cannot
	// oversubscribe the process.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS is the wall-clock budget in milliseconds. Zero uses the
	// server default; values above the server maximum are clamped. The
	// deadline starts at admission, so time spent queued counts.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxSamples, MaxBDDNodes, MaxWorlds are the remaining core.Budget
	// dimensions (zero = no extra bound).
	MaxSamples  int    `json:"max_samples,omitempty"`
	MaxBDDNodes int    `json:"max_bdd_nodes,omitempty"`
	MaxWorlds   uint64 `json:"max_worlds,omitempty"`
	// IdempotencyKey names a durable job (POST /v1/jobs only). The job ID
	// is derived from it, so re-submitting the same key returns the
	// existing job — running, done, or failed — instead of starting a
	// duplicate computation.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// Lanes restricts the run to the lane subrange [lo,hi) of a
	// total-lane split — a cluster coordinator's sub-request. Requires
	// engine "monte-carlo-direct". The response carries the raw per-lane
	// aggregates (Response.LaneRange) instead of a meaningful whole-run
	// estimate.
	Lanes *LaneRange `json:"lanes,omitempty"`
	// Resume is a shipped checkpoint frame (checkpoint.EncodeFrame over
	// the engine snapshot payload; base64 on the wire) to continue from
	// instead of starting at sample zero — how a coordinator re-plants a
	// dead replica's progress on a survivor. It is fingerprint-checked
	// against this request; a frame from a different computation fails
	// with 409 kind "checkpoint", a corrupt frame likewise. Requires
	// Lanes. On POST /v1/jobs the field is ignored when the idempotency
	// key names an existing job (the job's own store is fresher).
	Resume []byte `json:"resume,omitempty"`
}

// LaneRange is the wire form of mc.Range: the lane subrange [Lo,Hi) of
// a Total-lane split.
type LaneRange struct {
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
	Total int `json:"total"`
}

// TrailStep mirrors core.FallbackStep on the wire.
type TrailStep struct {
	Engine string `json:"engine"`
	Err    string `json:"err"`
}

// Response is the JSON body of a successful reliability computation.
type Response struct {
	// R, H are float renderings of the reliability and expected error.
	R float64 `json:"r"`
	H float64 `json:"h"`
	// RExact, HExact are exact rationals ("3/4"), present only when the
	// engine's guarantee is exact.
	RExact string `json:"r_exact,omitempty"`
	HExact string `json:"h_exact,omitempty"`
	// Engine names the engine that produced the result; Guarantee is its
	// error semantics ("exact", "relative(eps,delta)", ...).
	Engine    string `json:"engine"`
	Guarantee string `json:"guarantee"`
	// Eps, Delta, Samples describe a randomized guarantee. When Degraded
	// is true, Eps is the honestly widened accuracy the realized sample
	// count supports.
	Eps     float64 `json:"eps,omitempty"`
	Delta   float64 `json:"delta,omitempty"`
	Samples int     `json:"samples,omitempty"`
	// Class is the detected query class.
	Class string `json:"class"`
	// EvalMode reports how a sampling engine evaluated the query per
	// world ("compiled" or "interpreted"); empty for exact engines.
	EvalMode string `json:"eval_mode,omitempty"`
	// Degraded reports that a budget or deadline cut the run short and
	// the guarantee was weakened (but remains valid).
	Degraded bool `json:"degraded"`
	// FallbackTrail lists the dispatch rungs that were tried and
	// abandoned (or skipped by an open circuit breaker) before Engine
	// produced this result.
	FallbackTrail []TrailStep `json:"fallback_trail,omitempty"`
	// Seed echoes the PRNG seed the computation ran under; rerunning with
	// it (same query, database, accuracy) reproduces the estimate
	// bit-for-bit.
	Seed int64 `json:"seed"`
	// Resumed reports that the computation restored a checkpoint and
	// continued from it rather than starting fresh.
	Resumed bool `json:"resumed,omitempty"`
	// LaneRange carries the raw per-lane aggregates of a lane-range
	// sub-request (Request.Lanes); R and H are then partial-range values
	// and only the coordinator's merge is meaningful.
	LaneRange *LaneRangeReport `json:"lane_range,omitempty"`
	// LaneDigest is the replica's attestation over LaneRange.Lanes
	// (mc.RangeDigest): the coordinator recomputes the digest over the
	// aggregates it received and refuses the sub-response on mismatch,
	// so wire or memory corruption between the sampling loop and the
	// merge can never reach a served estimate. Present exactly when
	// LaneRange is.
	LaneDigest string `json:"lane_digest,omitempty"`
	// ClusterTrail, on responses assembled by a cluster coordinator,
	// records where each lane range ran and every retry, hedge, and
	// reassignment — the cross-replica analogue of FallbackTrail.
	ClusterTrail []ClusterStep `json:"cluster_trail,omitempty"`
	// Checkpoint is the latest checkpoint frame the run published
	// (base64 on the wire), present on lane-range responses when the
	// server ships checkpoints. On a degraded response it is the sample
	// boundary the run stopped at, so the caller can resume the
	// remainder elsewhere instead of re-drawing. CheckpointSeq is the
	// total sample count the frame captures.
	Checkpoint    []byte `json:"checkpoint,omitempty"`
	CheckpointSeq int    `json:"checkpoint_seq,omitempty"`
	// ElapsedMS is the server-side wall-clock time in milliseconds,
	// including queueing.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// LaneRangeReport mirrors core.LaneRangeResult on the wire.
type LaneRangeReport struct {
	Lo        int          `json:"lo"`
	Hi        int          `json:"hi"`
	Total     int          `json:"total"`
	Method    string       `json:"method"`
	Requested int          `json:"requested"`
	NormF     float64      `json:"norm_f"`
	Lanes     []mc.LaneAgg `json:"lanes"`
}

// ClusterStep mirrors core.ClusterStep on the wire.
type ClusterStep struct {
	Replica string `json:"replica"`
	Lo      int    `json:"lo,omitempty"`
	Hi      int    `json:"hi,omitempty"`
	Event   string `json:"event"`
	Err     string `json:"err,omitempty"`
	// Source and Seq carry the provenance of "resume" and
	// "resume-rejected" events: the replica whose shipped checkpoint was
	// re-planted (or rejected) and its sample-count sequence. Audit
	// events reuse Source for the counterparty replica.
	Source string `json:"source,omitempty"`
	Seq    int    `json:"seq,omitempty"`
	// Digest is the lane-aggregate attestation digest involved in
	// "attest" and audit events.
	Digest string `json:"digest,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	// Error is a one-line human-readable cause.
	Error string `json:"error"`
	// Kind is the machine-readable failure class: "bad-request",
	// "not-found", "canceled", "budget-exceeded", "infeasible",
	// "engine-failed", "shedding", or "draining".
	Kind string `json:"kind"`
	// RetryAfterMS echoes the Retry-After header for "shedding" and
	// "draining" responses.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// Failure kinds of ErrorResponse.Kind.
const (
	KindBadRequest   = "bad-request"
	KindNotFound     = "not-found"
	KindCanceled     = "canceled"
	KindBudget       = "budget-exceeded"
	KindInfeasible   = "infeasible"
	KindEngineFailed = "engine-failed"
	KindShedding     = "shedding"
	KindDraining     = "draining"
	KindCheckpoint   = "checkpoint"
	KindJobsDisabled = "jobs-disabled"
	KindCorruptStore = "corrupt-store"
)

// statusFor maps the PR 1 typed error taxonomy onto HTTP statuses:
// ErrCanceled→408, ErrBudgetExceeded→413, ErrInfeasible→422,
// ErrEngineFailed→500. Anything else out of the runtime is an
// input-validation failure and maps to 400.
func statusFor(err error) (int, string) {
	switch {
	case errors.Is(err, core.ErrCheckpointMismatch), errors.Is(err, checkpoint.ErrCorruptCheckpoint),
		errors.Is(err, mc.ErrResumeMismatch):
		return http.StatusConflict, KindCheckpoint
	case errors.Is(err, store.ErrCorruptPage):
		// Corruption in a stored database is the server's data going
		// bad, not the caller's input: a 500 the operator must look at.
		return http.StatusInternalServerError, KindCorruptStore
	case errors.Is(err, core.ErrCanceled):
		return http.StatusRequestTimeout, KindCanceled
	case errors.Is(err, core.ErrBudgetExceeded):
		return http.StatusRequestEntityTooLarge, KindBudget
	case errors.Is(err, core.ErrInfeasible):
		return http.StatusUnprocessableEntity, KindInfeasible
	case errors.Is(err, core.ErrEngineFailed):
		return http.StatusInternalServerError, KindEngineFailed
	default:
		return http.StatusBadRequest, KindBadRequest
	}
}

// toResponse renders a core.Result on the wire.
func toResponse(res core.Result, elapsedMS int64) *Response {
	out := &Response{
		R:         res.RFloat,
		H:         res.HFloat,
		Engine:    res.Engine,
		Guarantee: res.Guarantee.String(),
		Eps:       res.Eps,
		Delta:     res.Delta,
		Samples:   res.Samples,
		Class:     res.Class.String(),
		EvalMode:  res.EvalMode,
		Degraded:  res.Degraded,
		Seed:      res.Seed,
		Resumed:   res.Resumed,
		ElapsedMS: elapsedMS,
	}
	if res.R != nil {
		out.RExact = res.R.RatString()
	}
	if res.H != nil {
		out.HExact = res.H.RatString()
	}
	for _, s := range res.FallbackTrail {
		out.FallbackTrail = append(out.FallbackTrail, TrailStep{Engine: s.Engine, Err: s.Err})
	}
	if lr := res.LaneRange; lr != nil {
		out.LaneRange = &LaneRangeReport{
			Lo: lr.Range.Lo, Hi: lr.Range.Hi, Total: lr.Range.Total,
			Method: lr.Method, Requested: lr.Requested, NormF: lr.NormF,
			Lanes: lr.Lanes,
		}
		// Attest the aggregates as rendered: anything that perturbs them
		// between here and the coordinator's merge breaks the digest.
		out.LaneDigest = mc.RangeDigest(lr.Lanes)
	}
	for _, s := range res.ClusterTrail {
		out.ClusterTrail = append(out.ClusterTrail, ClusterStep{Replica: s.Replica, Lo: s.Lo, Hi: s.Hi, Event: s.Event, Err: s.Err, Source: s.Source, Seq: s.Seq, Digest: s.Digest})
	}
	return out
}
