package server

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"qrel/internal/core"
)

// fakeClock drives Breakers deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestBreakers(threshold int, cooldown time.Duration) (*Breakers, *fakeClock) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreakers(BreakerConfig{Threshold: threshold, Cooldown: cooldown})
	b.now = clk.now
	return b, clk
}

var crash = fmt.Errorf("%w: test crash", core.ErrEngineFailed)

func TestBreakerLifecycle(t *testing.T) {
	b, clk := newTestBreakers(3, time.Minute)
	e := core.EngineLineageBDD

	// Closed: crashes below threshold keep the rung admitted.
	for i := 0; i < 2; i++ {
		if !b.Allow(e) {
			t.Fatalf("crash %d: rung vetoed below threshold", i)
		}
		b.Report(e, crash)
	}
	// A success resets the streak.
	if !b.Allow(e) {
		t.Fatal("healthy rung vetoed")
	}
	b.Report(e, nil)
	if got := b.Snapshot()[string(e)]; got.State != breakerClosed || got.ConsecutiveFailures != 0 {
		t.Fatalf("after success: %+v, want closed with 0 failures", got)
	}

	// Three consecutive crashes trip it.
	for i := 0; i < 3; i++ {
		b.Allow(e)
		b.Report(e, crash)
	}
	if got := b.Snapshot()[string(e)]; got.State != breakerOpen || got.Trips != 1 {
		t.Fatalf("after threshold: %+v, want open/1 trip", got)
	}
	if b.Allow(e) {
		t.Fatal("open breaker admitted a rung before cooldown")
	}

	// Cooldown elapses: exactly one half-open probe is admitted.
	clk.advance(time.Minute)
	if !b.Allow(e) {
		t.Fatal("probe not admitted after cooldown")
	}
	if b.Allow(e) {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe succeeds: closed again.
	b.Report(e, nil)
	if got := b.Snapshot()[string(e)]; got.State != breakerClosed {
		t.Fatalf("after probe success: %+v, want closed", got)
	}
	if !b.Allow(e) {
		t.Fatal("closed breaker vetoed")
	}
}

func TestBreakerProbeFailure(t *testing.T) {
	b, clk := newTestBreakers(1, time.Minute)
	e := core.EngineMCDirect
	b.Allow(e)
	b.Report(e, crash) // trips at threshold 1
	clk.advance(time.Minute)
	if !b.Allow(e) {
		t.Fatal("probe not admitted")
	}
	b.Report(e, crash) // probe fails: re-open, cooldown restarts
	if got := b.Snapshot()[string(e)]; got.State != breakerOpen || got.Trips != 2 {
		t.Fatalf("after probe crash: %+v, want open/2 trips", got)
	}
	clk.advance(30 * time.Second)
	if b.Allow(e) {
		t.Fatal("rung admitted mid-cooldown after failed probe")
	}
	clk.advance(31 * time.Second)
	if !b.Allow(e) {
		t.Fatal("second probe not admitted after full cooldown")
	}
}

func TestBreakerOnlyEngineFailedCounts(t *testing.T) {
	b, _ := newTestBreakers(1, time.Minute)
	e := core.EngineLineageKL
	// Budget exhaustion, infeasibility, and cancellation are not crashes:
	// the engine ran and behaved. None of them may trip the breaker.
	for _, err := range []error{core.ErrBudgetExceeded, core.ErrInfeasible, core.ErrCanceled,
		errors.New("fragment mismatch")} {
		b.Allow(e)
		b.Report(e, err)
		if got := b.Snapshot()[string(e)]; got.State != breakerClosed {
			t.Fatalf("%v tripped the breaker: %+v", err, got)
		}
	}
	b.Allow(e)
	b.Report(e, crash)
	if got := b.Snapshot()[string(e)]; got.State != breakerOpen {
		t.Fatalf("ErrEngineFailed did not trip a threshold-1 breaker: %+v", got)
	}
}

func TestBreakersIndependentPerEngine(t *testing.T) {
	b, _ := newTestBreakers(1, time.Minute)
	b.Allow(core.EngineQFree)
	b.Report(core.EngineQFree, crash)
	if b.Allow(core.EngineQFree) {
		t.Fatal("tripped rung admitted")
	}
	if !b.Allow(core.EngineWorldEnum) {
		t.Fatal("healthy sibling rung vetoed")
	}
}
