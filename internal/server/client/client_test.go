package client

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"qrel/internal/server"
)

// shedThenServe fakes a qreld that sheds the first n requests with
// 503 + Retry-After and then answers successfully.
func shedThenServe(n int64, retryAfterSecs string) (*httptest.Server, *atomic.Int64) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= n {
			if retryAfterSecs != "" {
				w.Header().Set("Retry-After", retryAfterSecs)
			}
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(server.ErrorResponse{Error: "full", Kind: server.KindShedding})
			return
		}
		json.NewEncoder(w).Encode(server.Response{R: 0.5, Engine: "qfree-exact", Guarantee: "exact"})
	}))
	return ts, &calls
}

func fastClient(base string) *Client {
	c := New(base)
	c.BaseBackoff = time.Millisecond
	c.MaxBackoff = 10 * time.Millisecond
	return c
}

func TestClientRetriesShedding(t *testing.T) {
	ts, calls := shedThenServe(2, "")
	defer ts.Close()
	res, err := fastClient(ts.URL).Reliability(context.Background(), server.Request{DB: "g", Query: "S(x)"})
	if err != nil {
		t.Fatal(err)
	}
	if res.R != 0.5 {
		t.Errorf("R = %v, want 0.5", res.R)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("%d attempts, want 3 (2 shed + 1 ok)", got)
	}
}

func TestClientGivesUpAfterMaxAttempts(t *testing.T) {
	ts, calls := shedThenServe(1000, "")
	defer ts.Close()
	c := fastClient(ts.URL)
	c.MaxAttempts = 3
	_, err := c.Reliability(context.Background(), server.Request{DB: "g", Query: "S(x)"})
	if err == nil {
		t.Fatal("expected an error after exhausting retries")
	}
	if !IsShed(err) {
		t.Errorf("final error %v does not unwrap to a shed APIError", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("%d attempts, want exactly MaxAttempts=3", got)
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	ts, _ := shedThenServe(1, "1") // 1-second hint, larger than the 10ms backoff cap
	defer ts.Close()
	c := fastClient(ts.URL)
	c.MaxBackoff = 2 * time.Second // allow the hint through
	start := time.Now()
	if _, err := c.Reliability(context.Background(), server.Request{DB: "g", Query: "S(x)"}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Errorf("retry after %v, want >= 1s per the Retry-After hint", elapsed)
	}
}

func TestClientDoesNotRetryCallerErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(server.ErrorResponse{Error: "bad query", Kind: server.KindBadRequest})
	}))
	defer ts.Close()
	_, err := fastClient(ts.URL).Reliability(context.Background(), server.Request{DB: "g", Query: "("})
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Status != http.StatusBadRequest || apiErr.Kind != server.KindBadRequest {
		t.Fatalf("error %v, want a 400 APIError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("%d attempts on a 400, want 1 (no retry)", got)
	}
}

func TestClientContextCancelStopsRetries(t *testing.T) {
	ts, _ := shedThenServe(1000, "")
	defer ts.Close()
	c := fastClient(ts.URL)
	c.MaxAttempts = 1000
	c.BaseBackoff = 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Reliability(ctx, server.Request{DB: "g", Query: "S(x)"})
	if err == nil {
		t.Fatal("expected a context error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("canceled retry loop ran %v", elapsed)
	}
}

// runningForever fakes a job endpoint whose job never leaves the
// running state, counting the polls.
func runningForever() (*httptest.Server, *atomic.Int64) {
	var polls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		polls.Add(1)
		json.NewEncoder(w).Encode(server.JobStatus{ID: "j1", State: server.JobRunning})
	}))
	return ts, &polls
}

func TestWaitJobCancelReturnsPromptly(t *testing.T) {
	ts, _ := runningForever()
	defer ts.Close()
	c := New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	st, err := c.WaitJob(ctx, "j1", time.Hour) // one poll, then a wait the cancel must cut short
	if err == nil {
		t.Fatal("expected a context error from a canceled wait")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("canceled WaitJob returned after %v, want promptly", elapsed)
	}
	if st == nil || st.State != server.JobRunning {
		t.Errorf("canceled WaitJob status = %+v, want the last observed running status", st)
	}
}

func TestRetryAfterDuration(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		v    string
		want time.Duration
	}{
		{"empty", "", 0},
		{"delay-seconds", "5", 5 * time.Second},
		{"zero-seconds", "0", 0},
		{"negative-seconds", "-3", 0},
		{"http-date-future", now.Add(30 * time.Second).Format(http.TimeFormat), 30 * time.Second},
		{"http-date-past", now.Add(-time.Minute).Format(http.TimeFormat), 0},
		{"rfc850-future", now.Add(90 * time.Second).Format(time.RFC850), 90 * time.Second},
		{"asctime-future", now.Add(time.Minute).Format(time.ANSIC), time.Minute},
		{"garbage", "soon", 0},
		{"float-seconds", "1.5", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := retryAfterDuration(tc.v, now); got != tc.want {
				t.Errorf("retryAfterDuration(%q) = %v, want %v", tc.v, got, tc.want)
			}
		})
	}
}

// flakyListener kills the first `failures` accepted connections before
// any bytes flow — the client sees a connection reset / EOF, the
// transport error shape a dying replica produces.
type flakyListener struct {
	net.Listener
	failures atomic.Int64
}

func (l *flakyListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.failures.Add(-1) >= 0 {
			c.Close()
			continue
		}
		return c, nil
	}
}

// flakyJobServer serves the job API behind a listener that resets the
// first `failures` connections, counting requests that actually arrive.
func flakyJobServer(t *testing.T, failures int64) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var served atomic.Int64
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(server.JobStatus{ID: "j1", State: server.JobRunning})
	}))
	fl := &flakyListener{Listener: ts.Listener}
	fl.failures.Store(failures)
	ts.Listener = fl
	// Fresh transport: a shared DefaultClient could hand the doomed
	// listener a pooled connection from another test.
	ts.Start()
	return ts, &served
}

func TestSubmitJobRetriesTransportErrors(t *testing.T) {
	ts, served := flakyJobServer(t, 2)
	defer ts.Close()
	c := fastClient(ts.URL)
	c.HTTPClient = ts.Client()
	st, err := c.SubmitJob(context.Background(), server.Request{DB: "g", Query: "S(x)", IdempotencyKey: "k1"})
	if err != nil {
		t.Fatalf("SubmitJob through a flaky listener: %v", err)
	}
	if st.ID != "j1" {
		t.Errorf("job ID = %q, want j1", st.ID)
	}
	if got := served.Load(); got != 1 {
		t.Errorf("server handled %d submissions, want exactly 1 (resets retried, no duplicates served)", got)
	}
}

func TestGetJobRetriesTransportErrors(t *testing.T) {
	ts, _ := flakyJobServer(t, 1)
	defer ts.Close()
	c := fastClient(ts.URL)
	c.HTTPClient = ts.Client()
	st, err := c.GetJob(context.Background(), "j1")
	if err != nil {
		t.Fatalf("GetJob through a flaky listener: %v", err)
	}
	if st.State != server.JobRunning {
		t.Errorf("state = %q, want running", st.State)
	}
}

func TestSubmitJobRetriesShedding(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(server.ErrorResponse{Error: "full", Kind: server.KindShedding})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(server.JobStatus{ID: "j1", State: server.JobRunning})
	}))
	defer ts.Close()
	st, err := fastClient(ts.URL).SubmitJob(context.Background(), server.Request{DB: "g", Query: "S(x)", IdempotencyKey: "k1"})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j1" {
		t.Errorf("job ID = %q, want j1", st.ID)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("%d attempts, want 3 (2 shed + 1 accepted)", got)
	}
}

func TestSubmitJobDoesNotRetryCallerErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(server.ErrorResponse{Error: "missing key", Kind: server.KindBadRequest})
	}))
	defer ts.Close()
	_, err := fastClient(ts.URL).SubmitJob(context.Background(), server.Request{DB: "g", Query: "S(x)"})
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("error %v, want a 400 APIError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("%d attempts on a 400, want 1 (no retry)", got)
	}
}

func TestWaitJobBackoffCapped(t *testing.T) {
	ts, polls := runningForever()
	defer ts.Close()
	c := New(ts.URL)
	c.MaxBackoff = 8 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if _, err := c.WaitJob(ctx, "j1", time.Millisecond); err == nil {
		t.Fatal("expected a context error")
	}
	// Delays 1,2,4 then 8ms capped: ~20 polls fit in 150ms. An uncapped
	// doubling (1,2,4,...,128ms) would manage at most 8.
	if n := polls.Load(); n < 10 {
		t.Errorf("only %d polls in 150ms; the backoff cap is not holding the cadence", n)
	}
}
