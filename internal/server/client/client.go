// Package client is a small retrying client for the qrel reliability
// service (internal/server). It retries transport failures and 503
// shed/drain responses with exponential backoff and full jitter,
// honoring the server's Retry-After hint, and surfaces every other
// failure as a typed *APIError carrying the HTTP status and the
// server's machine-readable failure kind.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"qrel/internal/server"
)

// APIError is a non-2xx response from the service.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Kind is the server's failure class (server.Kind*).
	Kind string
	// Message is the server's one-line cause.
	Message string
	// retryAfter is the server's parsed Retry-After hint, if any.
	retryAfter time.Duration
}

// Error renders "status kind: message".
func (e *APIError) Error() string {
	return fmt.Sprintf("qreld: %d %s: %s", e.Status, e.Kind, e.Message)
}

// IsShed reports whether the error is (or wraps) a 503 — load shedding
// or draining.
func IsShed(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusServiceUnavailable
}

// Client calls the reliability service. The zero value is not usable;
// construct with New.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTPClient is the underlying transport (default http.DefaultClient).
	HTTPClient *http.Client
	// MaxAttempts bounds tries per call, the first included (default 4).
	MaxAttempts int
	// BaseBackoff is the first retry delay; it doubles per attempt with
	// full jitter (default 50ms). A server Retry-After hint overrides
	// the computed delay when larger.
	BaseBackoff time.Duration
	// MaxBackoff caps any single delay (default 2s).
	MaxBackoff time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a client with the default retry policy.
func New(base string) *Client {
	return &Client{
		Base:        base,
		HTTPClient:  http.DefaultClient,
		MaxAttempts: 4,
		BaseBackoff: 50 * time.Millisecond,
		MaxBackoff:  2 * time.Second,
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// jitter draws uniformly from (0, d] — full jitter keeps a retrying
// fleet from re-converging on the same instant.
func (c *Client) jitter(d time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return time.Duration(c.rng.Int63n(int64(d))) + 1
}

// backoff computes the delay before retry attempt (0-based), taking
// the larger of the jittered exponential and the server's Retry-After.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := c.BaseBackoff << uint(attempt)
	if d > c.MaxBackoff || d <= 0 {
		d = c.MaxBackoff
	}
	d = c.jitter(d)
	if retryAfter > d {
		d = retryAfter
	}
	if d > c.MaxBackoff {
		d = c.MaxBackoff
	}
	return d
}

// Reliability posts one computation request, retrying 503s and
// transport errors per the client's policy. Non-retryable failures
// return immediately as *APIError.
func (c *Client) Reliability(ctx context.Context, req server.Request) (*server.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < c.MaxAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(c.backoff(attempt-1, retryAfterOf(lastErr))):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		res, err := c.post(ctx, bytes.NewReader(body))
		if err == nil {
			return res, nil
		}
		lastErr = err
		if apiErr, ok := err.(*APIError); ok && apiErr.Status != http.StatusServiceUnavailable {
			return nil, err // the server answered; retrying cannot help
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("client: giving up after %d attempts: %w", c.MaxAttempts, lastErr)
}

// retryAfterOf extracts a Retry-After hint from a shed response.
func retryAfterOf(err error) time.Duration {
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.retryAfter > 0 {
		return apiErr.retryAfter
	}
	return 0
}

// post performs one attempt.
func (c *Client) post(ctx context.Context, body io.Reader) (*server.Response, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/reliability", body)
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpClient := c.HTTPClient
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	resp, err := httpClient.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var out server.Response
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return nil, fmt.Errorf("client: decoding response: %w", err)
		}
		return &out, nil
	}
	apiErr := &APIError{Status: resp.StatusCode, retryAfter: parseRetryAfter(resp)}
	var ec server.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&ec); err == nil {
		apiErr.Kind = ec.Kind
		apiErr.Message = ec.Error
	} else {
		apiErr.Message = resp.Status
	}
	return nil, apiErr
}

// parseRetryAfter reads the Retry-After header, accepting both RFC
// 9110 forms: delay-seconds and HTTP-date.
func parseRetryAfter(resp *http.Response) time.Duration {
	return retryAfterDuration(resp.Header.Get("Retry-After"), time.Now())
}

// retryAfterDuration parses one Retry-After value against now.
// Malformed values, negative delays, and past dates all read as "no
// hint" (0) — a bad hint must never stall the retry loop.
func retryAfterDuration(v string, now time.Time) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if when, err := http.ParseTime(v); err == nil {
		if d := when.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// SubmitJob posts a durable job (POST /v1/jobs), retrying transport
// errors (connection refused/reset) and 503s per the client's policy.
// The request must carry an idempotency key; re-submitting the same key
// re-attaches to the existing job, which is exactly what makes the
// blind retry safe — a submission whose response was lost in flight is
// answered by the journaled job, never run twice.
func (c *Client) SubmitJob(ctx context.Context, req server.Request) (*server.JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return c.jobWithRetry(ctx, func() (*http.Request, error) {
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		httpReq.Header.Set("Content-Type", "application/json")
		return httpReq, nil
	})
}

// GetJob polls a durable job (GET /v1/jobs/{id}), with the same retry
// policy as SubmitJob (a GET is trivially idempotent).
func (c *Client) GetJob(ctx context.Context, id string) (*server.JobStatus, error) {
	return c.jobWithRetry(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id, nil)
	})
}

// jobWithRetry runs one job-API call under the retry policy: transport
// failures and 503s back off and retry, any other server answer returns
// immediately. build is called per attempt so the body reader is fresh.
func (c *Client) jobWithRetry(ctx context.Context, build func() (*http.Request, error)) (*server.JobStatus, error) {
	var lastErr error
	for attempt := 0; attempt < c.MaxAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(c.backoff(attempt-1, retryAfterOf(lastErr))):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		httpReq, err := build()
		if err != nil {
			return nil, err
		}
		st, err := c.doJob(httpReq)
		if err == nil {
			return st, nil
		}
		lastErr = err
		if apiErr, ok := err.(*APIError); ok && apiErr.Status != http.StatusServiceUnavailable {
			return nil, err // the server answered; retrying cannot help
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("client: giving up after %d attempts: %w", c.MaxAttempts, lastErr)
}

// WaitJob polls a job until it leaves the running state (or ctx
// ends). The poll interval starts at interval and doubles up to the
// client's MaxBackoff, so waiting on a long job converges to a gentle
// cadence instead of hammering the server at the startup rate.
// Cancellation between polls returns promptly with the last observed
// status alongside ctx's error.
func (c *Client) WaitJob(ctx context.Context, id string, interval time.Duration) (*server.JobStatus, error) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	maxDelay := c.MaxBackoff
	if maxDelay <= 0 {
		maxDelay = 2 * time.Second
	}
	delay := interval
	if delay > maxDelay {
		delay = maxDelay
	}
	for {
		st, err := c.GetJob(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State != server.JobRunning {
			return st, nil
		}
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return st, ctx.Err()
		}
		if delay *= 2; delay > maxDelay {
			delay = maxDelay
		}
	}
}

// doJob performs one job-API request and decodes the status body.
func (c *Client) doJob(httpReq *http.Request) (*server.JobStatus, error) {
	httpClient := c.HTTPClient
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	resp, err := httpClient.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		var st server.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return nil, fmt.Errorf("client: decoding job status: %w", err)
		}
		return &st, nil
	}
	apiErr := &APIError{Status: resp.StatusCode, retryAfter: parseRetryAfter(resp)}
	var ec server.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&ec); err == nil {
		apiErr.Kind = ec.Kind
		apiErr.Message = ec.Error
	} else {
		apiErr.Message = resp.Status
	}
	return nil, apiErr
}

// JobCheckpoint fetches a job's freshest shipped checkpoint frame
// (GET /v1/jobs/{id}/checkpoint). One attempt, no retry — callers poll
// it on a cadence anyway. A job with no snapshot yet answers 404,
// surfaced as a *APIError.
func (c *Client) JobCheckpoint(ctx context.Context, id string) (*server.JobCheckpoint, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id+"/checkpoint", nil)
	if err != nil {
		return nil, err
	}
	httpClient := c.HTTPClient
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	resp, err := httpClient.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{Status: resp.StatusCode, retryAfter: parseRetryAfter(resp)}
		var ec server.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&ec); err == nil {
			apiErr.Kind = ec.Kind
			apiErr.Message = ec.Error
		} else {
			apiErr.Message = resp.Status
		}
		return nil, apiErr
	}
	var out server.JobCheckpoint
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decoding job checkpoint: %w", err)
	}
	return &out, nil
}

// Statz fetches the server's /statz snapshot.
func (c *Client) Statz(ctx context.Context) (*server.Statz, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/statz", nil)
	if err != nil {
		return nil, err
	}
	httpClient := c.HTTPClient
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	resp, err := httpClient.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &APIError{Status: resp.StatusCode, Message: resp.Status}
	}
	var out server.Statz
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}
