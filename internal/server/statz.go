package server

import (
	"sync/atomic"
	"time"

	"qrel/internal/checkpoint"
)

// stats holds the server's monotonic counters and gauges. All fields
// are updated with atomics; /statz reads are lock-free snapshots.
type stats struct {
	// accepted counts requests admitted into the queue; shed counts
	// requests rejected at admission (queue full); drained counts
	// requests rejected because the server was draining.
	accepted atomic.Int64
	shed     atomic.Int64
	drained  atomic.Int64
	// completed / failed / canceled partition finished computations by
	// outcome: success, error, and error matching ErrCanceled.
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	// inflight gauges computations currently running in a worker.
	inflight atomic.Int64
	// Durable-job counters: submitted (new jobs accepted), done/failed
	// (finalized outcomes), suspended (drain-canceled jobs left journaled
	// as running for the next process to resume), recovered (jobs
	// re-admitted by the startup scan).
	jobsSubmitted atomic.Int64
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	jobsSuspended atomic.Int64
	jobsRecovered atomic.Int64
}

// Statz is the JSON body of GET /statz: a point-in-time snapshot of the
// server's self-protection state.
type Statz struct {
	// QueueDepth is the number of admitted requests waiting for a
	// worker; QueueCapacity and Workers echo the configuration.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	Workers       int `json:"workers"`
	// InFlight is the number of computations running right now.
	InFlight int64 `json:"in_flight"`
	// Accepted/Shed/DrainRejected count admission outcomes since start.
	Accepted      int64 `json:"accepted"`
	Shed          int64 `json:"shed"`
	DrainRejected int64 `json:"drain_rejected"`
	// Completed/Failed/Canceled count finished computations by outcome.
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	// Draining reports that the server has stopped accepting work.
	Draining bool `json:"draining"`
	// Jobs counts durable-job outcomes since start; Checkpoints
	// aggregates the snapshot stores of every job (written, resumed,
	// corrupt-rejected, bytes). Present only when a checkpoint dir is
	// configured.
	Jobs        *JobStatz            `json:"jobs,omitempty"`
	Checkpoints *checkpoint.Snapshot `json:"checkpoints,omitempty"`
	// Breakers maps engine names to their circuit-breaker state.
	Breakers map[string]BreakerStatz `json:"breakers"`
	// Databases lists the registered database names.
	Databases []string `json:"databases"`
	// UptimeMS is milliseconds since the server was created.
	UptimeMS int64 `json:"uptime_ms"`
}

// JobStatz is the durable-job section of Statz.
type JobStatz struct {
	Submitted int64 `json:"submitted"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Suspended int64 `json:"suspended"`
	Recovered int64 `json:"recovered"`
}

// Statz snapshots the server state for GET /statz (also usable
// programmatically, e.g. by tests and the selftest).
func (s *Server) Statz() Statz {
	var jobs *JobStatz
	var ckpts *checkpoint.Snapshot
	if s.jobsEnabled() {
		jobs = &JobStatz{
			Submitted: s.stats.jobsSubmitted.Load(),
			Done:      s.stats.jobsDone.Load(),
			Failed:    s.stats.jobsFailed.Load(),
			Suspended: s.stats.jobsSuspended.Load(),
			Recovered: s.stats.jobsRecovered.Load(),
		}
		snap := s.ckptMetrics.Snapshot()
		ckpts = &snap
	}
	return Statz{
		Jobs:          jobs,
		Checkpoints:   ckpts,
		QueueDepth:    len(s.tasks),
		QueueCapacity: cap(s.tasks),
		Workers:       s.cfg.Workers,
		InFlight:      s.stats.inflight.Load(),
		Accepted:      s.stats.accepted.Load(),
		Shed:          s.stats.shed.Load(),
		DrainRejected: s.stats.drained.Load(),
		Completed:     s.stats.completed.Load(),
		Failed:        s.stats.failed.Load(),
		Canceled:      s.stats.canceled.Load(),
		Draining:      s.draining.Load(),
		Breakers:      s.breakers.Snapshot(),
		Databases:     s.DatabaseNames(),
		UptimeMS:      time.Since(s.start).Milliseconds(),
	}
}
