package server

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"qrel/internal/checkpoint"
)

// stats holds the server's monotonic counters and gauges. All fields
// are updated with atomics; /statz reads are lock-free snapshots.
type stats struct {
	// accepted counts requests admitted into the queue; shed counts
	// requests rejected at admission (queue full); drained counts
	// requests rejected because the server was draining.
	accepted atomic.Int64
	shed     atomic.Int64
	drained  atomic.Int64
	// completed / failed / canceled partition finished computations by
	// outcome: success, error, and error matching ErrCanceled.
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	// inflight gauges computations currently running in a worker.
	inflight atomic.Int64
	// Durable-job counters: submitted (new jobs accepted), done/failed
	// (finalized outcomes), suspended (drain-canceled jobs left journaled
	// as running for the next process to resume), recovered (jobs
	// re-admitted by the startup scan).
	jobsSubmitted atomic.Int64
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	jobsSuspended atomic.Int64
	jobsRecovered atomic.Int64
	// Checkpoint-shipping counters (see ship.go): frames published by
	// lane-range runs, frames served over the jobs API, and the fates of
	// shipped resume frames arriving in requests.
	ckptShipped     atomic.Int64
	ckptServed      atomic.Int64
	resumesReceived atomic.Int64
	resumesAccepted atomic.Int64
	resumesRejected atomic.Int64
	// computeCorrupted counts lane-range results perturbed by the
	// Byzantine-replica hook (Config.ComputeCorrupt or the
	// cluster/compute-corrupt fault site) — nonzero only under chaos.
	computeCorrupted atomic.Int64
	// compileFallbacks counts finished computations whose fallback trail
	// records an abandoned vm compile: the sampling engine wanted the
	// compiled evaluator but ran interpreted. Persistently nonzero means
	// the fleet is paying tree-walk prices for queries believed compiled.
	compileFallbacks atomic.Int64

	// engMu guards engines: per-engine run/sample/busy-time counters fed
	// by the pool workers, from which /statz derives samples/sec.
	engMu   sync.Mutex
	engines map[string]*engineCounters
}

// engineCounters aggregates the throughput of one engine, with a
// nested split by evaluation mode (compiled vs interpreted) for the
// sampling engines that report one.
type engineCounters struct {
	runs    int64
	samples int64
	busy    time.Duration
	eval    map[string]*engineCounters
}

func (c *engineCounters) add(samples int, busy time.Duration) {
	c.runs++
	c.samples += int64(samples)
	c.busy += busy
}

// recordEngine accounts one finished computation to its engine and,
// when the engine reported an evaluation mode, to that mode's
// sub-counters.
func (st *stats) recordEngine(engine, evalMode string, samples int, busy time.Duration) {
	if engine == "" {
		return
	}
	st.engMu.Lock()
	defer st.engMu.Unlock()
	if st.engines == nil {
		st.engines = map[string]*engineCounters{}
	}
	c := st.engines[engine]
	if c == nil {
		c = &engineCounters{}
		st.engines[engine] = c
	}
	c.add(samples, busy)
	if evalMode == "" {
		return
	}
	if c.eval == nil {
		c.eval = map[string]*engineCounters{}
	}
	e := c.eval[evalMode]
	if e == nil {
		e = &engineCounters{}
		c.eval[evalMode] = e
	}
	e.add(samples, busy)
}

// engineSnapshot renders the per-engine counters for /statz.
func (st *stats) engineSnapshot() map[string]EngineStatz {
	st.engMu.Lock()
	defer st.engMu.Unlock()
	if len(st.engines) == 0 {
		return nil
	}
	out := make(map[string]EngineStatz, len(st.engines))
	for name, c := range st.engines {
		e := evalStatz(c)
		var ev map[string]EvalStatz
		if len(c.eval) > 0 {
			ev = make(map[string]EvalStatz, len(c.eval))
			for mode, m := range c.eval {
				ev[mode] = evalStatz(m)
			}
		}
		out[name] = EngineStatz{EvalStatz: e, Eval: ev}
	}
	return out
}

// evalStatz renders one counter bundle (whole-engine or one eval mode).
func evalStatz(c *engineCounters) EvalStatz {
	e := EvalStatz{Runs: c.runs, Samples: c.samples, BusyMS: c.busy.Milliseconds()}
	if c.busy > 0 {
		e.SamplesPerSec = float64(c.samples) / c.busy.Seconds()
	}
	return e
}

// Statz is the JSON body of GET /statz: a point-in-time snapshot of the
// server's self-protection state.
type Statz struct {
	// ReplicaID identifies this server instance (Config.ReplicaID);
	// cluster coordinators use it to tell replicas apart.
	ReplicaID string `json:"replica_id,omitempty"`
	// QueueDepth is the number of admitted requests waiting for a
	// worker; QueueCapacity and Workers echo the configuration.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	Workers       int `json:"workers"`
	// InFlight is the number of computations running right now.
	InFlight int64 `json:"in_flight"`
	// Accepted/Shed/DrainRejected count admission outcomes since start.
	Accepted      int64 `json:"accepted"`
	Shed          int64 `json:"shed"`
	DrainRejected int64 `json:"drain_rejected"`
	// Completed/Failed/Canceled count finished computations by outcome.
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	// Draining reports that the server has stopped accepting work.
	Draining bool `json:"draining"`
	// Jobs counts durable-job outcomes since start; Checkpoints
	// aggregates the snapshot stores of every job (written, resumed,
	// corrupt-rejected, bytes). Present only when a checkpoint dir is
	// configured.
	Jobs        *JobStatz            `json:"jobs,omitempty"`
	Checkpoints *checkpoint.Snapshot `json:"checkpoints,omitempty"`
	// Shipping counts checkpoint frames published/served and the fates
	// of shipped resume frames (see ship.go).
	Shipping ShippingStatz `json:"shipping"`
	// ComputeCorrupted counts lane-range results silently perturbed by
	// the Byzantine-replica chaos hook; always zero in production.
	ComputeCorrupted int64 `json:"compute_corrupted,omitempty"`
	// CompileFallbacks counts finished computations that wanted the
	// compiled evaluator but fell back to the interpreter (a vm step in
	// the fallback trail).
	CompileFallbacks int64 `json:"compile_fallbacks,omitempty"`
	// Breakers maps engine names to their circuit-breaker state.
	Breakers map[string]BreakerStatz `json:"breakers"`
	// Engines maps engine names to their cumulative throughput counters
	// (runs, samples drawn, busy time, derived samples/sec). Present once
	// at least one computation finished.
	Engines map[string]EngineStatz `json:"engines,omitempty"`
	// Runtime is a point-in-time snapshot of the Go runtime: heap, GC,
	// and goroutine gauges for capacity monitoring.
	Runtime RuntimeStatz `json:"runtime"`
	// Databases lists the registered database names.
	Databases []string `json:"databases"`
	// UptimeMS is milliseconds since the server was created.
	UptimeMS int64 `json:"uptime_ms"`
}

// EngineStatz is one engine's cumulative throughput in Statz: the
// whole-engine counters, plus — for sampling engines that report an
// evaluation mode — the same counters split by mode, so dashboards can
// compare compiled vs interpreted samples/sec directly.
type EngineStatz struct {
	EvalStatz
	Eval map[string]EvalStatz `json:"eval,omitempty"`
}

// EvalStatz is one throughput counter bundle (an engine total, or one
// evaluation mode of an engine).
type EvalStatz struct {
	Runs          int64   `json:"runs"`
	Samples       int64   `json:"samples"`
	BusyMS        int64   `json:"busy_ms"`
	SamplesPerSec float64 `json:"samples_per_sec"`
}

// RuntimeStatz is the Go-runtime section of Statz.
type RuntimeStatz struct {
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	NumGC          uint32 `json:"num_gc"`
	GCPauseTotalMS int64  `json:"gc_pause_total_ms"`
	Goroutines     int    `json:"goroutines"`
	GOMAXPROCS     int    `json:"gomaxprocs"`
}

// runtimeStatz reads the Go runtime gauges.
func runtimeStatz() RuntimeStatz {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return RuntimeStatz{
		HeapAllocBytes: m.HeapAlloc,
		HeapSysBytes:   m.HeapSys,
		NumGC:          m.NumGC,
		GCPauseTotalMS: int64(m.PauseTotalNs / 1e6),
		Goroutines:     runtime.NumGoroutine(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
	}
}

// JobStatz is the durable-job section of Statz.
type JobStatz struct {
	Submitted int64 `json:"submitted"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Suspended int64 `json:"suspended"`
	Recovered int64 `json:"recovered"`
}

// Statz snapshots the server state for GET /statz (also usable
// programmatically, e.g. by tests and the selftest).
func (s *Server) Statz() Statz {
	var jobs *JobStatz
	var ckpts *checkpoint.Snapshot
	if s.jobsEnabled() {
		jobs = &JobStatz{
			Submitted: s.stats.jobsSubmitted.Load(),
			Done:      s.stats.jobsDone.Load(),
			Failed:    s.stats.jobsFailed.Load(),
			Suspended: s.stats.jobsSuspended.Load(),
			Recovered: s.stats.jobsRecovered.Load(),
		}
		snap := s.ckptMetrics.Snapshot()
		ckpts = &snap
	}
	return Statz{
		ReplicaID:   s.cfg.ReplicaID,
		Jobs:        jobs,
		Checkpoints: ckpts,
		Shipping: ShippingStatz{
			Shipped:         s.stats.ckptShipped.Load(),
			Served:          s.stats.ckptServed.Load(),
			ResumesReceived: s.stats.resumesReceived.Load(),
			ResumesAccepted: s.stats.resumesAccepted.Load(),
			ResumesRejected: s.stats.resumesRejected.Load(),
		},
		ComputeCorrupted: s.stats.computeCorrupted.Load(),
		CompileFallbacks: s.stats.compileFallbacks.Load(),
		QueueDepth:       len(s.tasks),
		QueueCapacity:    cap(s.tasks),
		Workers:          s.cfg.Workers,
		InFlight:         s.stats.inflight.Load(),
		Accepted:         s.stats.accepted.Load(),
		Shed:             s.stats.shed.Load(),
		DrainRejected:    s.stats.drained.Load(),
		Completed:        s.stats.completed.Load(),
		Failed:           s.stats.failed.Load(),
		Canceled:         s.stats.canceled.Load(),
		Draining:         s.draining.Load(),
		Breakers:         s.breakers.Snapshot(),
		Engines:          s.stats.engineSnapshot(),
		Runtime:          runtimeStatz(),
		Databases:        s.DatabaseNames(),
		UptimeMS:         time.Since(s.start).Milliseconds(),
	}
}
