package qrel_test

import (
	"context"
	"fmt"
	"math/big"

	"qrel"
)

// ExampleReliability computes the exact reliability of a conjunctive
// query on a small unreliable database.
func ExampleReliability() {
	voc := qrel.MustVocabulary(
		qrel.RelSym{Name: "Follows", Arity: 2},
		qrel.RelSym{Name: "Verified", Arity: 1},
	)
	s := qrel.MustStructure(3, voc)
	s.MustAdd("Follows", 0, 1)
	s.MustAdd("Verified", 0)

	db := qrel.NewDB(s)
	db.MustSetError(qrel.GroundAtom{Rel: "Verified", Args: qrel.Tuple{0}}, big.NewRat(1, 10))

	q := qrel.MustParseQuery("exists x y . Follows(x,y) & Verified(x)", voc)
	res, err := qrel.Reliability(context.Background(), db, q, qrel.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("class:", qrel.Classify(q))
	fmt.Println("R =", res.R.RatString())
	// Output:
	// class: conjunctive
	// R = 9/10
}

// ExampleAbsoluteReliability decides whether any possible world can
// change the query answer (Definition 5.6).
func ExampleAbsoluteReliability() {
	voc := qrel.MustVocabulary(qrel.RelSym{Name: "S", Arity: 1})
	s := qrel.MustStructure(2, voc)
	s.MustAdd("S", 0)
	db := qrel.NewDB(s)
	db.MustSetError(qrel.GroundAtom{Rel: "S", Args: qrel.Tuple{1}}, big.NewRat(1, 2))

	// The query only depends on S(0), which is certain.
	res, err := qrel.AbsoluteReliability(db, qrel.MustParseQuery("S(#0)", voc), qrel.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("absolutely reliable:", res.Reliable)
	// Output:
	// absolutely reliable: true
}

// ExampleExpectedErrorPerTuple produces a per-answer-tuple risk report.
func ExampleExpectedErrorPerTuple() {
	voc := qrel.MustVocabulary(qrel.RelSym{Name: "S", Arity: 1})
	s := qrel.MustStructure(2, voc)
	s.MustAdd("S", 0)
	s.MustAdd("S", 1)
	db := qrel.NewDB(s)
	db.MustSetError(qrel.GroundAtom{Rel: "S", Args: qrel.Tuple{1}}, big.NewRat(1, 4))

	per, err := qrel.ExpectedErrorPerTuple(db, qrel.MustParseQuery("S(x)", voc), qrel.Options{})
	if err != nil {
		panic(err)
	}
	for _, te := range per {
		fmt.Printf("%v: %s\n", te.Tuple, te.H.RatString())
	}
	// Output:
	// (0): 0
	// (1): 1/4
}
