#!/usr/bin/env bash
# Crash-resume smoke test: SIGKILL a checkpointed relcalc run mid-flight,
# resume it from the surviving snapshots, and demand that the final
# estimate is byte-identical to an uninterrupted run with the same seed.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/relcalc" ./cmd/relcalc
go build -o "$workdir/mkdb" ./cmd/mkdb

"$workdir/mkdb" -kind graph -n 24 -uncertain 14 -seed 7 > "$workdir/g.udb"

args=(-db "$workdir/g.udb" -query 'exists y . (E(x,y) & S(y))'
      -engine monte-carlo-direct -eps 0.004 -delta 0.05 -seed 42)

# Uninterrupted reference run.
"$workdir/relcalc" "${args[@]}" > "$workdir/ref.out"

# Checkpointed run, killed with SIGKILL as soon as it has committed at
# least one snapshot — no chance to flush, trap, or clean up.
"$workdir/relcalc" "${args[@]}" -checkpoint "$workdir/ckpt" -checkpoint-every 2000 \
    > "$workdir/killed.out" 2>&1 &
pid=$!
for _ in $(seq 1 1000); do
  ls "$workdir"/ckpt/*.qckpt >/dev/null 2>&1 && break
  sleep 0.01
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
if ! ls "$workdir"/ckpt/*.qckpt >/dev/null 2>&1; then
  echo "FAIL: no snapshot was committed before the kill" >&2
  exit 1
fi

# Resume to completion.
"$workdir/relcalc" "${args[@]}" -checkpoint "$workdir/ckpt" -resume > "$workdir/resumed.out"
grep -q '^resumed:' "$workdir/resumed.out" || {
  echo "FAIL: resumed run did not report resuming:" >&2
  cat "$workdir/resumed.out" >&2
  exit 1
}

# The estimate lines must match byte for byte.
grep '^H ' "$workdir/ref.out" > "$workdir/ref.h"
grep '^H ' "$workdir/resumed.out" > "$workdir/resumed.h"
if ! diff -u "$workdir/ref.h" "$workdir/resumed.h"; then
  echo "FAIL: resumed estimate differs from the uninterrupted run" >&2
  exit 1
fi
echo "crash-resume smoke: OK ($(cat "$workdir/resumed.h"))"

# --- Paged store: SIGKILL mkdb mid-ingest, recover on open. ---
# Small batches plus -commit-delay stretch the ingest so the kill lands
# between (or inside) commits; whatever prefix of batches survives, the
# journal recovery must leave a store that verifies and answers queries.
"$workdir/mkdb" -kind graph -n 64 -uncertain 24 -seed 9 \
    -store "$workdir/g.qstore" -batch 8 -commit-delay 15ms \
    > /dev/null 2>&1 &
pid=$!
for _ in $(seq 1 1000); do
  [ -s "$workdir/g.qstore" ] && break
  sleep 0.01
done
sleep 0.05
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
if ! [ -s "$workdir/g.qstore" ]; then
  echo "FAIL: no store file was written before the kill" >&2
  exit 1
fi

"$workdir/mkdb" -check "$workdir/g.qstore" > "$workdir/check.out" || {
  echo "FAIL: killed store does not verify after recovery-on-open:" >&2
  cat "$workdir/check.out" >&2
  exit 1
}
"$workdir/relcalc" -store "$workdir/g.qstore" -query 'exists x y . E(x,y)' \
    -engine world-enum > "$workdir/store.out" || {
  echo "FAIL: relcalc cannot query the recovered store" >&2
  exit 1
}
grep -q '^R ' "$workdir/store.out" || {
  echo "FAIL: no reliability line from the recovered store:" >&2
  cat "$workdir/store.out" >&2
  exit 1
}
echo "store crash smoke: OK ($(cat "$workdir/check.out"))"
