#!/usr/bin/env bash
# Benchmark snapshot: run every benchmark family (E1–E13 in the root
# package plus the BDD micro-benchmarks) with -benchmem and write a
# machine-readable BENCH_10.json recording ns/op, allocs/op, B/op, and —
# where a family reports it — samples/sec. The sampling families carry
# an eval= dimension since the compiled bit-parallel evaluator landed;
# compare their eval=compiled rows against the BENCH_4.json rows of the
# same eps/workers to see the compiled-path speedup (the estimates are
# bit-identical across modes, so samples/sec is the whole story). The
# E13 family prices the paged storage engine: the same streaming
# scan→filter→join pipeline over a memory-resident source versus the
# checksummed page store under several buffer-pool budgets.
#
# Usage:
#   ./scripts/bench_snapshot.sh [output.json]
#   BENCHTIME=2s ./scripts/bench_snapshot.sh    # longer, steadier runs
#
# The default -benchtime=1x keeps the full grid to a couple of minutes;
# raise BENCHTIME for publication-grade numbers.
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_10.json}"
benchtime="${BENCHTIME:-1x}"
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench . -benchtime "$benchtime" -benchmem . ./internal/bdd | tee "$tmp"

awk -v goversion="$(go version | awk '{print $3}')" \
    -v ncpu="$(nproc)" \
    -v benchtime="$benchtime" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  ns = ""; bytes = ""; allocs = ""; sps = ""
  for (i = 2; i <= NF; i++) {
    if ($i == "ns/op")       ns = $(i-1)
    else if ($i == "B/op")        bytes = $(i-1)
    else if ($i == "allocs/op")   allocs = $(i-1)
    else if ($i == "samples/sec") sps = $(i-1)
  }
  if (ns == "") next
  row = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns)
  if (allocs != "") row = row sprintf(", \"allocs_per_op\": %s", allocs)
  if (bytes != "")  row = row sprintf(", \"bytes_per_op\": %s", bytes)
  if (sps != "")    row = row sprintf(", \"samples_per_sec\": %s", sps)
  row = row "}"
  rows[nrows++] = row
}
END {
  printf "{\n"
  printf "  \"schema\": \"qrel-bench-snapshot/1\",\n"
  printf "  \"generated\": \"%s\",\n", date
  printf "  \"go\": \"%s\",\n", goversion
  printf "  \"cpus\": %s,\n", ncpu
  printf "  \"benchtime\": \"%s\",\n", benchtime
  printf "  \"seed_baseline\": {\n"
  printf "    \"note\": \"pre-parallel sampling runtime, measured at commit 58006d1 on the same host; the Par families below replace these sequential loops\",\n"
  printf "    \"benchmarks\": [\n"
  printf "      {\"name\": \"BenchmarkE4KarpLuby/eps=0.2\", \"ns_per_op\": 8720347, \"allocs_per_op\": 50297, \"bytes_per_op\": 814169},\n"
  printf "      {\"name\": \"BenchmarkE4KarpLuby/eps=0.1\", \"ns_per_op\": 30915428, \"allocs_per_op\": 199697, \"bytes_per_op\": 3204576},\n"
  printf "      {\"name\": \"BenchmarkE4KarpLuby/eps=0.05\", \"ns_per_op\": 113019252, \"allocs_per_op\": 797297, \"bytes_per_op\": 12766176},\n"
  printf "      {\"name\": \"BenchmarkE8MonteCarlo/eps=0.2\", \"ns_per_op\": 9370544, \"allocs_per_op\": 86843, \"bytes_per_op\": 4036064},\n"
  printf "      {\"name\": \"BenchmarkE8MonteCarlo/eps=0.1\", \"ns_per_op\": 43427388, \"allocs_per_op\": 347700, \"bytes_per_op\": 16171745}\n"
  printf "    ]\n"
  printf "  },\n"
  printf "  \"benchmarks\": [\n"
  for (i = 0; i < nrows; i++)
    printf "%s%s\n", rows[i], (i < nrows - 1 ? "," : "")
  printf "  ]\n"
  printf "}\n"
}' "$tmp" > "$out"

echo "wrote $out ($(grep -c '"name"' "$out") benchmark rows)"
