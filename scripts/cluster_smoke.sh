#!/usr/bin/env bash
# Cluster smoke test: three qreld replicas behind a qrelcoord
# coordinator. A seeded parallel monte-carlo estimation is fanned out as
# lane ranges; the merged answer must match a single-node Workers=4 run
# on the estimate fields exactly — before a replica is killed, while one
# is killed mid-run (the coordinator reassigns its lane range to a
# survivor), and afterwards with only two replicas left. A second
# section SIGKILLs the coordinator itself mid-fan-out and restarts it on
# the same -journal-dir: journal recovery must complete the run and a
# re-POST of the same idempotency key must byte-match the single-node
# reference. A third section plants a Byzantine replica
# (-chaos-compute-corrupt) behind a fully auditing coordinator
# (-audit-frac 1): the lie must be caught, the replica quarantined, and
# the served estimate still byte-identical to the reference.
#
# Every process listens on an ephemeral port (-addr 127.0.0.1:0) and the
# script parses the kernel-picked port from its "listening on" log line,
# so concurrent CI runs never collide.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/qreld" ./cmd/qreld
go build -o "$workdir/qrelcoord" ./cmd/qrelcoord
go build -o "$workdir/mkdb" ./cmd/mkdb

"$workdir/mkdb" -kind graph -n 24 -uncertain 14 -seed 7 > "$workdir/g.udb"

# Tight enough eps (~300k samples) that each replica's lane range runs
# for seconds — a wide window for the mid-run kill — while the
# single-node reference stays far from its 120s budget on a loaded CI
# runner (degrading would change the estimate and fail the diff).
req='{"db":"g","query":"exists y . (E(x,y) & S(y))","engine":"monte-carlo-direct","eps":0.0025,"delta":0.05,"seed":42,"workers":4,"timeout_ms":120000}'

# Parse the kernel-picked ephemeral port from a daemon's "listening on"
# log line (both qreld and qrelcoord print one before serving).
port_of() { # logfile
  local port
  for _ in $(seq 1 400); do
    port=$(sed -n 's/.*listening on [^ ]*:\([0-9][0-9]*\) .*/\1/p' "$1" | head -1)
    if [ -n "$port" ]; then echo "$port"; return 0; fi
    sleep 0.05
  done
  echo "FAIL: no listening line appeared in $1" >&2
  return 1
}

wait_ready() {
  for _ in $(seq 1 400); do
    curl -fsS "$1/readyz" >/dev/null 2>&1 && return 0
    sleep 0.05
  done
  echo "FAIL: $1 never became ready" >&2
  return 1
}

# start_replica varname logfile [extra flags...] — boots a qreld on an
# ephemeral port and assigns its base URL to varname (no command
# substitution: the pid bookkeeping must happen in this shell). The
# started pid also lands in $last_pid.
start_replica() {
  local var=$1 log=$2
  shift 2
  "$workdir/qreld" -addr 127.0.0.1:0 -workers 4 -max-timeout 120s \
      -preload "g=$workdir/g.udb" "$@" >"$log" 2>&1 &
  last_pid=$!
  pids+=("$last_pid")
  printf -v "$var" 'http://127.0.0.1:%s' "$(port_of "$log")"
}

# Project a response down to its estimate-defining fields (jq-free: the
# trail and timing fields legitimately differ between runs).
estimate_of() {
  grep -o '"[rh]":[^,}]*\|"eps":[^,}]*\|"delta":[^,}]*\|"samples":[^,}]*\|"seed":[^,}]*\|"engine":"[^"]*"\|"degraded":[^,}]*' \
    <<<"$1" | sort
}

# Single-node Workers=4 reference.
start_replica ref_url "$workdir/ref.log"
wait_ready "$ref_url"
ref=$(curl -fsS "$ref_url/v1/reliability" -d "$req")
estimate_of "$ref" > "$workdir/ref.est"

# Three replicas behind a coordinator.
declare -a rpids rurls
for i in 1 2 3; do
  start_replica "rurls[$i]" "$workdir/replica$i.log"
  rpids[$i]=$last_pid
done
for i in 1 2 3; do wait_ready "${rurls[$i]}"; done
"$workdir/qrelcoord" -addr 127.0.0.1:0 \
    -replicas "${rurls[1]},${rurls[2]},${rurls[3]}" \
    -probe-interval 100ms -request-timeout 120s >"$workdir/coord.log" 2>&1 &
pids+=($!)
coord_url="http://127.0.0.1:$(port_of "$workdir/coord.log")"
wait_ready "$coord_url"

check() { # name, response
  estimate_of "$2" > "$workdir/$1.est"
  if ! diff -u "$workdir/ref.est" "$workdir/$1.est"; then
    echo "FAIL: $1 estimate differs from the single-node reference" >&2
    exit 1
  fi
}

# Healthy 3-way fan-out.
check healthy "$(curl -fsS "$coord_url/v1/reliability" -d "$req")"

# Kill one replica mid-estimation: the coordinator must reassign its
# lane range to a survivor and still answer identically.
curl -fsS "$coord_url/v1/reliability" -d "$req" > "$workdir/killed.json" &
curl_pid=$!
sleep 0.3
kill -9 "${rpids[3]}" 2>/dev/null || true
wait "$curl_pid"
check killed "$(cat "$workdir/killed.json")"

# And again from a cold start with only two replicas left.
check survivors "$(curl -fsS "$coord_url/v1/reliability" -d "$req")"

reassigns=$(grep -o '"reassigns":[0-9]*' <<<"$(curl -fsS "$coord_url/statz")" | grep -o '[0-9]*')
echo "cluster smoke: OK (reassigns=$reassigns, $(grep -o '"samples":[0-9]*' "$workdir/ref.est"))"

# ---- Coordinator crash recovery ----------------------------------------
# Fresh jobs-enabled replicas, a journaled jobs-mode coordinator, and a
# keyed fan-out. The coordinator is SIGKILLed mid-run; a successor on
# the same -journal-dir recovers the journaled fan-out (re-attaching to
# the replicas' durable sub-jobs) and a re-POST of the same key must
# answer byte-identically to the single-node reference.
keyreq='{"db":"g","query":"exists y . (E(x,y) & S(y))","engine":"monte-carlo-direct","eps":0.0025,"delta":0.05,"seed":42,"workers":4,"timeout_ms":120000,"idempotency_key":"smoke-crash-1"}'
journal="$workdir/journal"
declare -a jurls
for i in 4 5; do
  start_replica "jurls[$i]" "$workdir/replica$i.log" \
      -checkpoint-dir "$workdir/ckpt$i" -checkpoint-every 2000
done
for i in 4 5; do wait_ready "${jurls[$i]}"; done

start_coord() { # logfile — sets coord_pid and coord2_url
  "$workdir/qrelcoord" -addr 127.0.0.1:0 \
      -replicas "${jurls[4]},${jurls[5]}" \
      -use-jobs -journal-dir "$journal" \
      -probe-interval 100ms -job-poll 10ms -checkpoint-poll 20ms \
      -request-timeout 120s >"$1" 2>&1 &
  coord_pid=$!
  pids+=("$coord_pid")
  coord2_url="http://127.0.0.1:$(port_of "$1")"
  wait_ready "$coord2_url"
}
start_coord "$workdir/coord2a.log"

# Launch the keyed fan-out, give the sub-jobs time to start and ship
# checkpoints, then SIGKILL the coordinator mid-merge.
curl -s "$coord2_url/v1/reliability" -d "$keyreq" > "$workdir/orphaned.json" &
curl_pid=$!
sleep 1
kill -9 "$coord_pid" 2>/dev/null || true
wait "$curl_pid" 2>/dev/null || true

if [ ! -d "$journal" ] || ! ls "$journal"/fanout-*.json >/dev/null 2>&1; then
  echo "FAIL: coordinator left no fan-out journal in $journal" >&2
  exit 1
fi

# Restart on the same journal; recovery runs in the background while the
# listener serves. The re-POST of the same key either re-attaches to the
# journaled run or is served its journaled result — both must byte-match
# the reference.
start_coord "$workdir/coord2b.log"
check recovered "$(curl -fsS "$coord2_url/v1/reliability" -d "$keyreq")"

recovery_stats=$(curl -fsS "$coord2_url/statz" | grep -o '"recovered_fanouts":[0-9]*\|"resumes":[0-9]*\|"checkpoints_shipped":[0-9]*' | tr '\n' ' ')
echo "cluster smoke: coordinator crash recovery OK ($recovery_stats)"

# ---- Trust-but-verify: Byzantine replica under full audit --------------
# One replica of three is started with -chaos-compute-corrupt: every
# lane aggregate it computes is silently perturbed after the digest-able
# computation, so only a cross-replica audit can notice. The coordinator
# audits every completed range (-audit-frac 1): it must catch the
# mismatch, tie-break the liar on the third replica, quarantine it, and
# still serve the estimate byte-identical to the single-node reference.
declare -a aurls
start_replica "aurls[1]" "$workdir/liar.log" -chaos-compute-corrupt
start_replica "aurls[2]" "$workdir/honest2.log"
start_replica "aurls[3]" "$workdir/honest3.log"
for i in 1 2 3; do wait_ready "${aurls[$i]}"; done
"$workdir/qrelcoord" -addr 127.0.0.1:0 \
    -replicas "${aurls[1]},${aurls[2]},${aurls[3]}" \
    -audit-frac 1 -quarantine-cooldown 1h \
    -probe-interval 100ms -request-timeout 120s >"$workdir/coord3.log" 2>&1 &
pids+=($!)
audit_url="http://127.0.0.1:$(port_of "$workdir/coord3.log")"
wait_ready "$audit_url"

check audited "$(curl -fsS "$audit_url/v1/reliability" -d "$req")"

audit_statz=$(curl -fsS "$audit_url/statz")
if ! grep -q '"audit_mismatches":[1-9]' <<<"$audit_statz"; then
  echo "FAIL: full audit over a corrupt replica recorded no mismatch" >&2
  exit 1
fi
if ! grep -q '"health":"quarantined"' <<<"$audit_statz"; then
  echo "FAIL: the lying replica was not quarantined" >&2
  exit 1
fi
audit_stats=$(grep -o '"audits":[0-9]*\|"audit_mismatches":[0-9]*\|"audit_replants":[0-9]*\|"quarantines":[0-9]*' <<<"$audit_statz" | tr '\n' ' ')
echo "cluster smoke: byzantine replica caught and quarantined OK ($audit_stats)"
