#!/usr/bin/env bash
# Cluster smoke test: three qreld replicas behind a qrelcoord
# coordinator. A seeded parallel monte-carlo estimation is fanned out as
# lane ranges; the merged answer must match a single-node Workers=4 run
# on the estimate fields exactly — before a replica is killed, while one
# is killed mid-run (the coordinator reassigns its lane range to a
# survivor), and afterwards with only two replicas left.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/qreld" ./cmd/qreld
go build -o "$workdir/qrelcoord" ./cmd/qrelcoord
go build -o "$workdir/mkdb" ./cmd/mkdb

"$workdir/mkdb" -kind graph -n 24 -uncertain 14 -seed 7 > "$workdir/g.udb"

# Tight enough eps (~300k samples) that each replica's lane range runs
# for seconds — a wide window for the mid-run kill — while the
# single-node reference stays far from its 120s budget on a loaded CI
# runner (degrading would change the estimate and fail the diff).
req='{"db":"g","query":"exists y . (E(x,y) & S(y))","engine":"monte-carlo-direct","eps":0.0025,"delta":0.05,"seed":42,"workers":4,"timeout_ms":120000}'

wait_ready() {
  for _ in $(seq 1 400); do
    curl -fsS "$1/readyz" >/dev/null 2>&1 && return 0
    sleep 0.05
  done
  echo "FAIL: $1 never became ready" >&2
  return 1
}

# Project a response down to its estimate-defining fields (jq-free: the
# trail and timing fields legitimately differ between runs).
estimate_of() {
  grep -o '"[rh]":[^,}]*\|"eps":[^,}]*\|"delta":[^,}]*\|"samples":[^,}]*\|"seed":[^,}]*\|"engine":"[^"]*"\|"degraded":[^,}]*' \
    <<<"$1" | sort
}

# Single-node Workers=4 reference.
"$workdir/qreld" -addr 127.0.0.1:18079 -workers 4 -max-timeout 120s \
    -preload "g=$workdir/g.udb" >"$workdir/ref.log" 2>&1 &
pids+=($!)
wait_ready http://127.0.0.1:18079
ref=$(curl -fsS http://127.0.0.1:18079/v1/reliability -d "$req")
estimate_of "$ref" > "$workdir/ref.est"

# Three replicas behind a coordinator.
declare -a rpids
for i in 1 2 3; do
  "$workdir/qreld" -addr "127.0.0.1:1808$i" -workers 4 -max-timeout 120s \
      -preload "g=$workdir/g.udb" >"$workdir/replica$i.log" 2>&1 &
  rpids[$i]=$!
  pids+=($!)
done
for i in 1 2 3; do wait_ready "http://127.0.0.1:1808$i"; done
"$workdir/qrelcoord" -addr 127.0.0.1:18080 \
    -replicas http://127.0.0.1:18081,http://127.0.0.1:18082,http://127.0.0.1:18083 \
    -probe-interval 100ms -request-timeout 120s >"$workdir/coord.log" 2>&1 &
pids+=($!)
wait_ready http://127.0.0.1:18080

check() { # name, response
  estimate_of "$2" > "$workdir/$1.est"
  if ! diff -u "$workdir/ref.est" "$workdir/$1.est"; then
    echo "FAIL: $1 estimate differs from the single-node reference" >&2
    exit 1
  fi
}

# Healthy 3-way fan-out.
check healthy "$(curl -fsS http://127.0.0.1:18080/v1/reliability -d "$req")"

# Kill one replica mid-estimation: the coordinator must reassign its
# lane range to a survivor and still answer identically.
curl -fsS http://127.0.0.1:18080/v1/reliability -d "$req" > "$workdir/killed.json" &
curl_pid=$!
sleep 0.3
kill -9 "${rpids[3]}" 2>/dev/null || true
wait "$curl_pid"
check killed "$(cat "$workdir/killed.json")"

# And again from a cold start with only two replicas left.
check survivors "$(curl -fsS http://127.0.0.1:18080/v1/reliability -d "$req")"

reassigns=$(grep -o '"reassigns":[0-9]*' <<<"$(curl -fsS http://127.0.0.1:18080/statz)" | grep -o '[0-9]*')
echo "cluster smoke: OK (reassigns=$reassigns, $(grep -o '"samples":[0-9]*' "$workdir/ref.est"))"
