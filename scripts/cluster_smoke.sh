#!/usr/bin/env bash
# Cluster smoke test: three qreld replicas behind a qrelcoord
# coordinator. A seeded parallel monte-carlo estimation is fanned out as
# lane ranges; the merged answer must match a single-node Workers=4 run
# on the estimate fields exactly — before a replica is killed, while one
# is killed mid-run (the coordinator reassigns its lane range to a
# survivor), and afterwards with only two replicas left. A second
# section SIGKILLs the coordinator itself mid-fan-out and restarts it on
# the same -journal-dir: journal recovery must complete the run and a
# re-POST of the same idempotency key must byte-match the single-node
# reference.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/qreld" ./cmd/qreld
go build -o "$workdir/qrelcoord" ./cmd/qrelcoord
go build -o "$workdir/mkdb" ./cmd/mkdb

"$workdir/mkdb" -kind graph -n 24 -uncertain 14 -seed 7 > "$workdir/g.udb"

# Tight enough eps (~300k samples) that each replica's lane range runs
# for seconds — a wide window for the mid-run kill — while the
# single-node reference stays far from its 120s budget on a loaded CI
# runner (degrading would change the estimate and fail the diff).
req='{"db":"g","query":"exists y . (E(x,y) & S(y))","engine":"monte-carlo-direct","eps":0.0025,"delta":0.05,"seed":42,"workers":4,"timeout_ms":120000}'

wait_ready() {
  for _ in $(seq 1 400); do
    curl -fsS "$1/readyz" >/dev/null 2>&1 && return 0
    sleep 0.05
  done
  echo "FAIL: $1 never became ready" >&2
  return 1
}

# Project a response down to its estimate-defining fields (jq-free: the
# trail and timing fields legitimately differ between runs).
estimate_of() {
  grep -o '"[rh]":[^,}]*\|"eps":[^,}]*\|"delta":[^,}]*\|"samples":[^,}]*\|"seed":[^,}]*\|"engine":"[^"]*"\|"degraded":[^,}]*' \
    <<<"$1" | sort
}

# Single-node Workers=4 reference.
"$workdir/qreld" -addr 127.0.0.1:18079 -workers 4 -max-timeout 120s \
    -preload "g=$workdir/g.udb" >"$workdir/ref.log" 2>&1 &
pids+=($!)
wait_ready http://127.0.0.1:18079
ref=$(curl -fsS http://127.0.0.1:18079/v1/reliability -d "$req")
estimate_of "$ref" > "$workdir/ref.est"

# Three replicas behind a coordinator.
declare -a rpids
for i in 1 2 3; do
  "$workdir/qreld" -addr "127.0.0.1:1808$i" -workers 4 -max-timeout 120s \
      -preload "g=$workdir/g.udb" >"$workdir/replica$i.log" 2>&1 &
  rpids[$i]=$!
  pids+=($!)
done
for i in 1 2 3; do wait_ready "http://127.0.0.1:1808$i"; done
"$workdir/qrelcoord" -addr 127.0.0.1:18080 \
    -replicas http://127.0.0.1:18081,http://127.0.0.1:18082,http://127.0.0.1:18083 \
    -probe-interval 100ms -request-timeout 120s >"$workdir/coord.log" 2>&1 &
pids+=($!)
wait_ready http://127.0.0.1:18080

check() { # name, response
  estimate_of "$2" > "$workdir/$1.est"
  if ! diff -u "$workdir/ref.est" "$workdir/$1.est"; then
    echo "FAIL: $1 estimate differs from the single-node reference" >&2
    exit 1
  fi
}

# Healthy 3-way fan-out.
check healthy "$(curl -fsS http://127.0.0.1:18080/v1/reliability -d "$req")"

# Kill one replica mid-estimation: the coordinator must reassign its
# lane range to a survivor and still answer identically.
curl -fsS http://127.0.0.1:18080/v1/reliability -d "$req" > "$workdir/killed.json" &
curl_pid=$!
sleep 0.3
kill -9 "${rpids[3]}" 2>/dev/null || true
wait "$curl_pid"
check killed "$(cat "$workdir/killed.json")"

# And again from a cold start with only two replicas left.
check survivors "$(curl -fsS http://127.0.0.1:18080/v1/reliability -d "$req")"

reassigns=$(grep -o '"reassigns":[0-9]*' <<<"$(curl -fsS http://127.0.0.1:18080/statz)" | grep -o '[0-9]*')
echo "cluster smoke: OK (reassigns=$reassigns, $(grep -o '"samples":[0-9]*' "$workdir/ref.est"))"

# ---- Coordinator crash recovery ----------------------------------------
# Fresh jobs-enabled replicas, a journaled jobs-mode coordinator, and a
# keyed fan-out. The coordinator is SIGKILLed mid-run; a successor on
# the same -journal-dir recovers the journaled fan-out (re-attaching to
# the replicas' durable sub-jobs) and a re-POST of the same key must
# answer byte-identically to the single-node reference.
keyreq='{"db":"g","query":"exists y . (E(x,y) & S(y))","engine":"monte-carlo-direct","eps":0.0025,"delta":0.05,"seed":42,"workers":4,"timeout_ms":120000,"idempotency_key":"smoke-crash-1"}'
journal="$workdir/journal"
declare -a jpids
for i in 4 5; do
  "$workdir/qreld" -addr "127.0.0.1:1808$i" -workers 4 -max-timeout 120s \
      -checkpoint-dir "$workdir/ckpt$i" -checkpoint-every 2000 \
      -preload "g=$workdir/g.udb" >"$workdir/replica$i.log" 2>&1 &
  jpids[$i]=$!
  pids+=($!)
done
for i in 4 5; do wait_ready "http://127.0.0.1:1808$i"; done

start_coord() {
  "$workdir/qrelcoord" -addr 127.0.0.1:18090 \
      -replicas http://127.0.0.1:18084,http://127.0.0.1:18085 \
      -use-jobs -journal-dir "$journal" \
      -probe-interval 100ms -job-poll 10ms -checkpoint-poll 20ms \
      -request-timeout 120s >>"$workdir/coord2.log" 2>&1 &
  coord_pid=$!
  pids+=("$coord_pid")
  wait_ready http://127.0.0.1:18090
}
start_coord

# Launch the keyed fan-out, give the sub-jobs time to start and ship
# checkpoints, then SIGKILL the coordinator mid-merge.
curl -s http://127.0.0.1:18090/v1/reliability -d "$keyreq" > "$workdir/orphaned.json" &
curl_pid=$!
sleep 1
kill -9 "$coord_pid" 2>/dev/null || true
wait "$curl_pid" 2>/dev/null || true

if [ ! -d "$journal" ] || ! ls "$journal"/fanout-*.json >/dev/null 2>&1; then
  echo "FAIL: coordinator left no fan-out journal in $journal" >&2
  exit 1
fi

# Restart on the same journal; recovery runs in the background while the
# listener serves. The re-POST of the same key either re-attaches to the
# journaled run or is served its journaled result — both must byte-match
# the reference.
start_coord
check recovered "$(curl -fsS http://127.0.0.1:18090/v1/reliability -d "$keyreq")"

recovery_stats=$(curl -fsS http://127.0.0.1:18090/statz | grep -o '"recovered_fanouts":[0-9]*\|"resumes":[0-9]*\|"checkpoints_shipped":[0-9]*' | tr '\n' ' ')
echo "cluster smoke: coordinator crash recovery OK ($recovery_stats)"
