// Command relcalc computes the reliability of a query on an unreliable
// database given in the qrel text format.
//
// Usage:
//
//	relcalc -db census.udb -query 'exists x . Employed(x)' [flags]
//	relcalc -store g.qstore -query 'exists x y . E(x,y)'
//
// Flags select the engine (default: automatic dispatch on the query
// class), the accuracy parameters of randomized engines, resource
// budgets (-timeout, -budget-samples, -budget-bdd, -budget-worlds), and
// the output detail. With -per-tuple the exact per-answer-tuple
// expected errors are printed; with -absolute the absolute-reliability
// decision (Definition 5.6) is reported.
//
// Long Monte Carlo runs survive crashes: -checkpoint DIR makes the
// engine snapshot its estimator state (sample counts plus PRNG stream
// position) crash-safely every -checkpoint-every samples, and -resume
// continues from the newest intact snapshot. Because the snapshot pins
// the PRNG stream, a resumed run with the same -seed finishes
// bit-identical to one that was never interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"qrel"
	"qrel/internal/cliutil"
)

func main() {
	var (
		dbPath    = flag.String("db", "", "path to the unreliable database (qrel text format); '-' for stdin")
		storePath = flag.String("store", "", "path to a paged store file (mkdb -store); alternative to -db")
		query     = flag.String("query", "", "query in qrel syntax, e.g. 'exists x y . E(x,y) & S(x)'")
		engine    = flag.String("engine", "auto", "engine: auto|qfree|world-enum|lineage-bdd|lineage-kl|lineage-kl-thm53|monte-carlo|monte-carlo-direct")
		eps       = flag.Float64("eps", 0.05, "accuracy parameter of randomized engines")
		delta     = flag.Float64("delta", 0.05, "confidence parameter of randomized engines")
		seed      = flag.Int64("seed", 1, "random seed for randomized engines")
		workers   = flag.Int("workers", 0, "goroutines for lane-split parallel sampling (0 = sequential legacy stream; any value >= 1 yields the same bit-reproducible estimate)")
		eval      = flag.String("eval", "auto", "sampling evaluator: auto|compiled|interpreted (bit-identical; compiled is faster)")
		maxEnum   = flag.Int("max-enum", 16, "uncertain-atom budget for exact world enumeration")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget for the computation (0 = none)")
		maxSamp   = flag.Int("budget-samples", 0, "Monte Carlo sample budget (0 = none); partial runs return a degraded result")
		maxBDD    = flag.Int("budget-bdd", 0, "BDD node budget for the exact lineage engine (0 = engine default)")
		maxWorlds = flag.Uint64("budget-worlds", 0, "possible-world budget for exact enumeration (0 = none)")
		perTuple  = flag.Bool("per-tuple", false, "print exact per-tuple expected errors (world enumeration)")
		absolute  = flag.Bool("absolute", false, "decide absolute reliability (R = 1) instead of computing R")
		sens      = flag.Bool("sensitivity", false, "rank uncertain atoms by how strongly they drive the query's risk")
		ckptDir   = flag.String("checkpoint", "", "directory for crash-safe estimator snapshots (Monte Carlo engines)")
		ckptEvery = flag.Int("checkpoint-every", 0, "snapshot every n samples (0 = engine default)")
		resume    = flag.Bool("resume", false, "resume from the newest intact snapshot in -checkpoint")
	)
	flag.Parse()
	budget := qrel.Budget{Timeout: *timeout, MaxSamples: *maxSamp, MaxBDDNodes: *maxBDD, MaxWorlds: *maxWorlds}
	ckpt := ckptFlags{dir: *ckptDir, every: *ckptEvery, resume: *resume}
	if err := run(*dbPath, *storePath, *query, *engine, *eval, *eps, *delta, *seed, *workers, *maxEnum, budget, ckpt, *perTuple, *absolute, *sens); err != nil {
		fmt.Fprintln(os.Stderr, "relcalc:", err)
		// The typed runtime taxonomy maps onto distinct exit codes
		// (usage 2, canceled 3, budget 4, infeasible 5, engine 6) so
		// scripts can branch on the failure mode.
		os.Exit(cliutil.ExitCode(err))
	}
}

// ckptFlags carries the checkpoint/resume command-line options.
type ckptFlags struct {
	dir    string
	every  int
	resume bool
}

func run(dbPath, storePath, query, engine, eval string, eps, delta float64, seed int64, workers, maxEnum int, budget qrel.Budget, ckpt ckptFlags, perTuple, absolute, sensitivity bool) (err error) {
	defer cliutil.Recover(&err)
	if (dbPath == "") == (storePath == "") {
		return cliutil.UsageErrorf("exactly one of -db and -store is required")
	}
	if query == "" {
		return cliutil.UsageErrorf("-query is required")
	}
	if workers < 0 {
		return cliutil.UsageErrorf("-workers must be >= 0, got %d", workers)
	}
	if !qrel.KnownEngine(qrel.Engine(engine)) {
		return cliutil.UsageErrorf("unknown engine %q", engine)
	}
	if !qrel.KnownEvalMode(eval) {
		return cliutil.UsageErrorf("unknown eval mode %q", eval)
	}
	if ckpt.resume && ckpt.dir == "" {
		return cliutil.UsageErrorf("-resume requires -checkpoint")
	}
	var db *qrel.DB
	if storePath != "" {
		// Opening the store recovers its journal; a database loaded here
		// is bit-identical engine input to the text path.
		s, err := qrel.OpenStore(storePath, qrel.StoreOptions{})
		if err != nil {
			return err
		}
		defer s.Close()
		db, err = s.LoadDB()
		if err != nil {
			return err
		}
	} else {
		in := os.Stdin
		if dbPath != "-" {
			f, err := os.Open(dbPath)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		db, err = qrel.ParseDB(in)
		if err != nil {
			return err
		}
	}
	q, err := qrel.ParseQuery(query, db.A.Voc)
	if err != nil {
		return err
	}
	opts := qrel.Options{Eps: eps, Delta: delta, Seed: seed, Eval: eval, Workers: workers, MaxEnumAtoms: maxEnum, Budget: budget}
	if ckpt.dir != "" {
		store, err := qrel.OpenCheckpointStore(ckpt.dir, qrel.CheckpointOptions{})
		if err != nil {
			return err
		}
		opts.Checkpoint = &qrel.CheckpointConfig{Store: store, Every: ckpt.every, Resume: ckpt.resume}
	}
	fmt.Printf("universe: %d elements, %d facts, %d uncertain atoms\n",
		db.A.N, db.A.FactCount(), db.NumUncertain())
	fmt.Printf("query:    %s  [%v]\n", q, qrel.Classify(q))

	if absolute {
		res, err := qrel.AbsoluteReliability(db, q, opts)
		if err != nil {
			return err
		}
		fmt.Printf("absolutely reliable: %v  (engine %s)\n", res.Reliable, res.Engine)
		if res.Witness != nil {
			fmt.Printf("witness world: %v\n", res.Witness)
		}
		return nil
	}

	res, err := qrel.ReliabilityWith(context.Background(), qrel.Engine(engine), db, q, opts)
	if err != nil {
		return err
	}
	fmt.Printf("engine:   %s  (%v)\n", res.Engine, res.Guarantee)
	if res.EvalMode != "" {
		fmt.Printf("eval:     %s\n", res.EvalMode)
	}
	for _, step := range res.FallbackTrail {
		fmt.Printf("fallback: %s\n", step)
	}
	if res.Guarantee != qrel.Exact {
		fmt.Printf("seed:     %d\n", res.Seed)
	}
	if res.Resumed {
		fmt.Printf("resumed:  continued from checkpoint in %s\n", ckpt.dir)
	}
	if res.Degraded {
		fmt.Printf("DEGRADED: budget/deadline cut the run short; eps widened to %.3g\n", res.Eps)
	}
	if res.Guarantee == qrel.Exact {
		fmt.Printf("H = %s  (= %.6g)\n", res.H.RatString(), res.HFloat)
		fmt.Printf("R = %s  (= %.6g)\n", res.R.RatString(), res.RFloat)
	} else {
		fmt.Printf("H ≈ %.6g   R ≈ %.6g   (eps %.3g, delta %.3g, %d samples)\n",
			res.HFloat, res.RFloat, res.Eps, res.Delta, res.Samples)
	}

	if sensitivity {
		ranked, err := qrel.RankSensitivities(db, q, opts)
		if err != nil {
			return err
		}
		fmt.Println("uncertain atoms ranked by risk contribution (spread = |H|true − H|false|):")
		for _, s := range ranked {
			fmt.Printf("  %-14v nu=%-8s H|true=%-10s H|false=%-10s spread=%s\n",
				s.Atom, s.Nu.RatString(), s.HTrue.RatString(), s.HFalse.RatString(), s.Spread.RatString())
		}
	}

	if perTuple {
		per, err := qrel.ExpectedErrorPerTuple(db, q, opts)
		if err != nil {
			return err
		}
		fmt.Println("per-tuple expected error:")
		for _, te := range per {
			mark := " "
			if te.Observed {
				mark = "*"
			}
			fmt.Printf("  %s %v  H = %s\n", mark, te.Tuple, te.H.RatString())
		}
		fmt.Println("  (* = tuple in the observed answer)")
	}
	return nil
}
