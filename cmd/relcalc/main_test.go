package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qrel"
)

const testDB = `
universe 4
rel E/2
rel S/1
E 0 1
E 1 2 err 1/10
S 0 err 1/4
S 3 absent err 1/2
`

func writeDB(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.udb")
	if err := os.WriteFile(path, []byte(testDB), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestRunExactEngines(t *testing.T) {
	db := writeDB(t)
	for _, engine := range []string{"auto", "qfree", "world-enum"} {
		query := "S(x) & !E(x,x)"
		if engine == "world-enum" {
			query = "exists x . S(x)"
		}
		out, err := captureStdout(t, func() error {
			return run(db, query, engine, 0.05, 0.05, 1, 16, qrel.Budget{}, false, false, false)
		})
		if err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
		if !strings.Contains(out, "R = ") {
			t.Errorf("engine %s: no exact R in output:\n%s", engine, out)
		}
	}
}

func TestRunRandomizedEngine(t *testing.T) {
	db := writeDB(t)
	out, err := captureStdout(t, func() error {
		return run(db, "forall x . exists y . E(x,y)", "monte-carlo-direct", 0.2, 0.2, 1, 16, qrel.Budget{}, false, false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "samples") {
		t.Errorf("no sample count in output:\n%s", out)
	}
}

func TestRunPerTupleAndAbsolute(t *testing.T) {
	db := writeDB(t)
	out, err := captureStdout(t, func() error {
		return run(db, "exists y . E(x,y)", "auto", 0.05, 0.05, 1, 16, qrel.Budget{}, true, false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "per-tuple expected error") {
		t.Errorf("per-tuple report missing:\n%s", out)
	}
	out, err = captureStdout(t, func() error {
		return run(db, "exists x . S(x)", "auto", 0.05, 0.05, 1, 16, qrel.Budget{}, false, true, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "absolutely reliable") {
		t.Errorf("absolute verdict missing:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	db := writeDB(t)
	cases := []struct {
		name string
		fn   func() error
	}{
		{"missing args", func() error { return run("", "", "auto", 0.05, 0.05, 1, 16, qrel.Budget{}, false, false, false) }},
		{"missing file", func() error {
			return run("/nonexistent", "S(x)", "auto", 0.05, 0.05, 1, 16, qrel.Budget{}, false, false, false)
		}},
		{"bad query", func() error { return run(db, "S(", "auto", 0.05, 0.05, 1, 16, qrel.Budget{}, false, false, false) }},
		{"bad engine", func() error { return run(db, "S(x)", "bogus", 0.05, 0.05, 1, 16, qrel.Budget{}, false, false, false) }},
	}
	for _, c := range cases {
		if _, err := captureStdout(t, c.fn); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRunSensitivity(t *testing.T) {
	db := writeDB(t)
	out, err := captureStdout(t, func() error {
		return run(db, "exists x . S(x)", "auto", 0.05, 0.05, 1, 16, qrel.Budget{}, false, false, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ranked by risk contribution") {
		t.Errorf("sensitivity report missing:\n%s", out)
	}
}
