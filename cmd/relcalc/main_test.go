package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"qrel"
	"qrel/internal/cliutil"
	"qrel/internal/faultinject"
)

const testDB = `
universe 4
rel E/2
rel S/1
E 0 1
E 1 2 err 1/10
S 0 err 1/4
S 3 absent err 1/2
`

func writeDB(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.udb")
	if err := os.WriteFile(path, []byte(testDB), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestRunExactEngines(t *testing.T) {
	db := writeDB(t)
	for _, engine := range []string{"auto", "qfree", "world-enum"} {
		query := "S(x) & !E(x,x)"
		if engine == "world-enum" {
			query = "exists x . S(x)"
		}
		out, err := captureStdout(t, func() error {
			return run(db, "", query, engine, "auto", 0.05, 0.05, 1, 0, 16, qrel.Budget{}, ckptFlags{}, false, false, false)
		})
		if err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
		if !strings.Contains(out, "R = ") {
			t.Errorf("engine %s: no exact R in output:\n%s", engine, out)
		}
	}
}

func TestRunRandomizedEngine(t *testing.T) {
	db := writeDB(t)
	out, err := captureStdout(t, func() error {
		return run(db, "", "forall x . exists y . E(x,y)", "monte-carlo-direct", "auto", 0.2, 0.2, 1, 0, 16, qrel.Budget{}, ckptFlags{}, false, false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "samples") {
		t.Errorf("no sample count in output:\n%s", out)
	}
}

func TestRunPerTupleAndAbsolute(t *testing.T) {
	db := writeDB(t)
	out, err := captureStdout(t, func() error {
		return run(db, "", "exists y . E(x,y)", "auto", "auto", 0.05, 0.05, 1, 0, 16, qrel.Budget{}, ckptFlags{}, true, false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "per-tuple expected error") {
		t.Errorf("per-tuple report missing:\n%s", out)
	}
	out, err = captureStdout(t, func() error {
		return run(db, "", "exists x . S(x)", "auto", "auto", 0.05, 0.05, 1, 0, 16, qrel.Budget{}, ckptFlags{}, false, true, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "absolutely reliable") {
		t.Errorf("absolute verdict missing:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	db := writeDB(t)
	cases := []struct {
		name string
		fn   func() error
	}{
		{"missing args", func() error {
			return run("", "", "", "auto", "auto", 0.05, 0.05, 1, 0, 16, qrel.Budget{}, ckptFlags{}, false, false, false)
		}},
		{"missing file", func() error {
			return run("/nonexistent", "", "S(x)", "auto", "auto", 0.05, 0.05, 1, 0, 16, qrel.Budget{}, ckptFlags{}, false, false, false)
		}},
		{"bad query", func() error {
			return run(db, "", "S(", "auto", "auto", 0.05, 0.05, 1, 0, 16, qrel.Budget{}, ckptFlags{}, false, false, false)
		}},
		{"bad engine", func() error {
			return run(db, "", "S(x)", "bogus", "auto", 0.05, 0.05, 1, 0, 16, qrel.Budget{}, ckptFlags{}, false, false, false)
		}},
	}
	for _, c := range cases {
		if _, err := captureStdout(t, c.fn); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// TestExitCodes pins the documented exit-code contract: each failure
// class of the runtime taxonomy maps to its own code, so scripts can
// branch on $? without parsing stderr.
func TestExitCodes(t *testing.T) {
	defer faultinject.Reset()
	db := writeDB(t)
	secondOrder := "existsrel C/1 . exists x . C(x)"
	cases := []struct {
		name string
		code int
		arm  func()
		fn   func() error
	}{
		{"missing args", cliutil.ExitUsage, nil, func() error {
			return run("", "", "", "auto", "auto", 0.05, 0.05, 1, 0, 16, qrel.Budget{}, ckptFlags{}, false, false, false)
		}},
		{"unknown engine", cliutil.ExitUsage, nil, func() error {
			return run(db, "", "S(x)", "warp-drive", "auto", 0.05, 0.05, 1, 0, 16, qrel.Budget{}, ckptFlags{}, false, false, false)
		}},
		{"missing file", cliutil.ExitFailure, nil, func() error {
			return run("/nonexistent", "", "S(x)", "auto", "auto", 0.05, 0.05, 1, 0, 16, qrel.Budget{}, ckptFlags{}, false, false, false)
		}},
		{"timeout", cliutil.ExitCanceled, nil, func() error {
			return run(db, "", "exists x . S(x)", "world-enum", "auto", 0.05, 0.05, 1, 0, 16,
				qrel.Budget{Timeout: time.Nanosecond}, ckptFlags{}, false, false, false)
		}},
		{"world budget", cliutil.ExitBudget, nil, func() error {
			return run(db, "", "exists x y . E(x,y)", "world-enum", "auto", 0.05, 0.05, 1, 0, 16,
				qrel.Budget{MaxWorlds: 2}, ckptFlags{}, false, false, false)
		}},
		{"infeasible", cliutil.ExitInfeasible, nil, func() error {
			return run(db, "", secondOrder, "auto", "auto", 0.05, 0.05, 1, 0, 16,
				qrel.Budget{MaxWorlds: 2}, ckptFlags{}, false, false, false)
		}},
		{"engine panic", cliutil.ExitEngine, func() {
			faultinject.Enable(faultinject.SiteQFree, faultinject.Fault{Panic: "injected crash"})
		}, func() error {
			return run(db, "", "S(x)", "qfree", "auto", 0.05, 0.05, 1, 0, 16, qrel.Budget{}, ckptFlags{}, false, false, false)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			faultinject.Reset()
			if c.arm != nil {
				c.arm()
			}
			_, err := captureStdout(t, c.fn)
			if got := cliutil.ExitCode(err); got != c.code {
				t.Errorf("exit code %d (err %v), want %d", got, err, c.code)
			}
		})
	}
}

// TestCorruptInputs feeds deliberately broken database files through
// the full run path and demands a clean error — never a panic, which
// cliutil.Recover would surface as an "internal error" exit-1 failure
// rather than a stack trace.
func TestCorruptInputs(t *testing.T) {
	cases := []struct {
		name string
		db   string
	}{
		{"empty file", ""},
		{"binary junk", "\x00\x01\x02\xff\xfe PNG \x89"},
		{"bad universe", "universe banana\nrel S/1\n"},
		{"negative universe", "universe -3\nrel S/1\n"},
		{"bad arity", "universe 2\nrel S/x\n"},
		{"tuple out of range", "universe 2\nrel S/1\nS 7\n"},
		{"bad rational", "universe 2\nrel S/1\nS 0 err one/half\n"},
		{"prob out of range", "universe 2\nrel S/1\nS 0 err 3/2\n"},
		{"truncated line", "universe 2\nrel E/2\nE 0\n"},
		{"unknown relation", "universe 2\nrel S/1\nT 0\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "corrupt.udb")
			if err := os.WriteFile(path, []byte(c.db), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := captureStdout(t, func() error {
				return run(path, "", "exists x . S(x)", "auto", "auto", 0.05, 0.05, 1, 0, 16, qrel.Budget{}, ckptFlags{}, false, false, false)
			})
			if err == nil {
				t.Fatal("corrupt database accepted")
			}
			if strings.Contains(err.Error(), "\n") {
				t.Errorf("multi-line error for corrupt input: %q", err)
			}
		})
	}
}

// TestRunCheckpointResume interrupts a checkpointed run with a sample
// budget, resumes it without the budget, and demands the exact output
// line an uninterrupted run prints — the CLI-level face of the
// bit-identical resume guarantee.
func TestRunCheckpointResume(t *testing.T) {
	db := writeDB(t)
	q := "forall x . exists y . E(x,y)"
	estimateLine := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "H ") {
				return line
			}
		}
		t.Fatalf("no estimate line in output:\n%s", out)
		return ""
	}

	ref, err := captureStdout(t, func() error {
		return run(db, "", q, "monte-carlo-direct", "auto", 0.05, 0.1, 3, 0, 16, qrel.Budget{}, ckptFlags{}, false, false, false)
	})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	interrupted, err := captureStdout(t, func() error {
		return run(db, "", q, "monte-carlo-direct", "auto", 0.05, 0.1, 3, 0, 16,
			qrel.Budget{MaxSamples: 500}, ckptFlags{dir: dir, every: 100}, false, false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(interrupted, "DEGRADED") {
		t.Fatalf("budgeted run was not cut short:\n%s", interrupted)
	}

	resumed, err := captureStdout(t, func() error {
		return run(db, "", q, "monte-carlo-direct", "auto", 0.05, 0.1, 3, 0, 16,
			qrel.Budget{}, ckptFlags{dir: dir, resume: true}, false, false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resumed, "resumed:") {
		t.Fatalf("resumed run did not report resuming:\n%s", resumed)
	}
	if got, want := estimateLine(resumed), estimateLine(ref); got != want {
		t.Errorf("resumed estimate %q != uninterrupted %q", got, want)
	}
	if !strings.Contains(resumed, "seed:     3") {
		t.Errorf("resumed run does not echo the seed:\n%s", resumed)
	}
}

// TestRunEvalModes pins the -eval flag: compiled and interpreted print
// the same estimate line for a fixed seed, each run echoes its mode,
// and a bogus mode is a usage error.
func TestRunEvalModes(t *testing.T) {
	db := writeDB(t)
	q := "forall x . exists y . E(x,y)"
	outputs := map[string]string{}
	for _, mode := range []string{"compiled", "interpreted"} {
		out, err := captureStdout(t, func() error {
			return run(db, "", q, "monte-carlo-direct", mode, 0.1, 0.1, 3, 0, 16, qrel.Budget{}, ckptFlags{}, false, false, false)
		})
		if err != nil {
			t.Fatalf("-eval %s: %v", mode, err)
		}
		if !strings.Contains(out, "eval:     "+mode) {
			t.Errorf("-eval %s output does not echo the mode:\n%s", mode, out)
		}
		outputs[mode] = out
	}
	line := func(out string) string {
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, "H ") {
				return l
			}
		}
		t.Fatalf("no estimate line in output:\n%s", out)
		return ""
	}
	if c, i := line(outputs["compiled"]), line(outputs["interpreted"]); c != i {
		t.Errorf("compiled estimate %q != interpreted %q", c, i)
	}
	_, err := captureStdout(t, func() error {
		return run(db, "", q, "monte-carlo-direct", "bogus", 0.1, 0.1, 3, 0, 16, qrel.Budget{}, ckptFlags{}, false, false, false)
	})
	if cliutil.ExitCode(err) != cliutil.ExitUsage {
		t.Fatalf("-eval bogus: got %v, want usage error", err)
	}
}

// TestRunResumeRequiresCheckpoint pins the flag contract.
func TestRunResumeRequiresCheckpoint(t *testing.T) {
	db := writeDB(t)
	_, err := captureStdout(t, func() error {
		return run(db, "", "S(x)", "auto", "auto", 0.05, 0.05, 1, 0, 16,
			qrel.Budget{}, ckptFlags{resume: true}, false, false, false)
	})
	if cliutil.ExitCode(err) != cliutil.ExitUsage {
		t.Fatalf("-resume without -checkpoint: got %v, want usage error", err)
	}
}

func TestRunSensitivity(t *testing.T) {
	db := writeDB(t)
	out, err := captureStdout(t, func() error {
		return run(db, "", "exists x . S(x)", "auto", "auto", 0.05, 0.05, 1, 0, 16, qrel.Budget{}, ckptFlags{}, false, false, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ranked by risk contribution") {
		t.Errorf("sensitivity report missing:\n%s", out)
	}
}

// TestStoreInputMatchesTextInput runs the same exact query from the
// text file and from a paged store built from it: the output —
// including the exact rationals — must be identical.
func TestStoreInputMatchesTextInput(t *testing.T) {
	dbPath := writeDB(t)
	f, err := os.Open(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	db, err := qrel.ParseDB(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	storePath := filepath.Join(t.TempDir(), "db.qstore")
	if err := qrel.BuildStore(storePath, db, qrel.StoreOptions{PageSize: 256}, 0); err != nil {
		t.Fatal(err)
	}
	query := "exists x . S(x)"
	textOut, err := captureStdout(t, func() error {
		return run(dbPath, "", query, "world-enum", "auto", 0.05, 0.05, 1, 0, 16, qrel.Budget{}, ckptFlags{}, false, false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	storeOut, err := captureStdout(t, func() error {
		return run("", storePath, query, "world-enum", "auto", 0.05, 0.05, 1, 0, 16, qrel.Budget{}, ckptFlags{}, false, false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if textOut != storeOut {
		t.Errorf("store-backed run differs from text-backed run:\n%s\nvs\n%s", storeOut, textOut)
	}
	if !strings.Contains(storeOut, "R = ") {
		t.Errorf("no exact result in output:\n%s", storeOut)
	}
}

func TestStoreAndDBAreExclusive(t *testing.T) {
	dbPath := writeDB(t)
	err := run(dbPath, "somewhere.qstore", "S(x)", "auto", "auto", 0.05, 0.05, 1, 0, 16, qrel.Budget{}, ckptFlags{}, false, false, false)
	if err == nil || !cliutil.IsUsage(err) {
		t.Errorf("-db with -store: got %v, want usage error", err)
	}
}

func TestStoreCorruptionDegradesTyped(t *testing.T) {
	dbPath := writeDB(t)
	f, _ := os.Open(dbPath)
	db, err := qrel.ParseDB(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	storePath := filepath.Join(t.TempDir(), "db.qstore")
	if err := qrel.BuildStore(storePath, db, qrel.StoreOptions{PageSize: 256}, 0); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	for off := 256; off < len(raw); off += 256 {
		raw[off+64] ^= 0x01 // damage every non-bootstrap page
	}
	if err := os.WriteFile(storePath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run("", storePath, "exists x . S(x)", "world-enum", "auto", 0.05, 0.05, 1, 0, 16, qrel.Budget{}, ckptFlags{}, false, false, false)
	if !errors.Is(err, qrel.ErrCorruptPage) {
		t.Errorf("corrupt store: got %v, want ErrCorruptPage", err)
	}
}
