// Command qrelcoord fronts a set of qreld replicas with the same
// POST /v1/reliability API, so clients are oblivious to the cluster.
// Requests that are not explicitly parallel monte-carlo-direct runs are
// proxied whole to a consistent-hash replica with failover; parallel
// estimations fan out as disjoint lane ranges across the live replicas
// and the per-lane aggregates are merged in fixed lane order — the
// merged answer is bit-identical to a single-node Workers=N run, for
// any replica count, and stays so when a replica dies mid-run and its
// range is reassigned to a survivor.
//
// Usage:
//
//	qreld -addr :8081 & qreld -addr :8082 & qreld -addr :8083 &
//	qrelcoord -addr :8080 -replica http://127.0.0.1:8081 \
//	    -replica http://127.0.0.1:8082 -replica http://127.0.0.1:8083
//	curl -s localhost:8080/v1/reliability \
//	    -d '{"db":"g","query":"E(x,y)","engine":"monte-carlo-direct","workers":4,"seed":7}'
//
// Endpoints: POST /v1/reliability, GET /healthz, /readyz (ready iff at
// least one replica is up), /statz.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"qrel/internal/cliutil"
	"qrel/internal/cluster"
	"qrel/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		probeEvery   = flag.Duration("probe-interval", 2*time.Second, "replica /readyz probe cadence")
		probeTimeout = flag.Duration("probe-timeout", time.Second, "per-probe deadline")
		probeFails   = flag.Int("probe-fail-threshold", 2, "consecutive probe failures that mark a replica down")
		maxAttempts  = flag.Int("max-attempts", 6, "tries per lane range or proxied request, the first included")
		baseBackoff  = flag.Duration("base-backoff", 25*time.Millisecond, "first retry delay (jittered exponential)")
		maxBackoff   = flag.Duration("max-backoff", time.Second, "retry delay cap")
		hedgeAfter   = flag.Duration("hedge-after", 0, "duplicate an unanswered sub-request to the next live replica after this long (0 = off)")
		reqTimeout   = flag.Duration("request-timeout", 60*time.Second, "per-sub-request deadline")
		brkThreshold = flag.Int("breaker-threshold", 3, "consecutive transport failures that trip a replica's circuit breaker")
		brkCooldown  = flag.Duration("breaker-cooldown", 5*time.Second, "open time before a tripped breaker half-open probes")
		useJobs      = flag.Bool("use-jobs", false, "route sub-requests through the replicas' durable-jobs API (requires -checkpoint-dir on the replicas; fan-out requests must carry an idempotency key)")
		jobPoll      = flag.Duration("job-poll", 50*time.Millisecond, "initial sub-job poll interval in jobs mode")
		ckptPoll     = flag.Duration("checkpoint-poll", 100*time.Millisecond, "shipped-checkpoint poll cadence while waiting on a sub-job")
		journalDir   = flag.String("journal-dir", "", "fan-out journal directory; enables coordinator crash recovery of keyed fan-outs")
		auditFrac    = flag.Float64("audit-frac", 0, "fraction of completed lane ranges re-executed on a second replica and byte-compared before serving (0 = audits off; attestation always on)")
		probAudits   = flag.Int("probation-audits", 3, "consecutive clean audits a probation replica needs to be readmitted")
		quarCooldown = flag.Duration("quarantine-cooldown", 30*time.Second, "how long a quarantined replica stays fully drained before probation")
		seed         = flag.Int64("seed", 0, "retry-jitter RNG seed (0 = wall clock)")
		replicas     []string
	)
	flag.Func("replica", "qreld base URL (repeatable)", func(v string) error {
		replicas = append(replicas, v)
		return nil
	})
	flag.Func("replicas", "comma-separated qreld base URLs", func(v string) error {
		for _, u := range strings.Split(v, ",") {
			if u = strings.TrimSpace(u); u != "" {
				replicas = append(replicas, u)
			}
		}
		return nil
	})
	flag.Parse()

	cfg := cluster.Config{
		Replicas:           replicas,
		ProbeInterval:      *probeEvery,
		ProbeTimeout:       *probeTimeout,
		ProbeFailThreshold: *probeFails,
		MaxAttempts:        *maxAttempts,
		BaseBackoff:        *baseBackoff,
		MaxBackoff:         *maxBackoff,
		HedgeAfter:         *hedgeAfter,
		RequestTimeout:     *reqTimeout,
		Breaker:            server.BreakerConfig{Threshold: *brkThreshold, Cooldown: *brkCooldown},
		UseJobs:            *useJobs,
		JobPoll:            *jobPoll,
		CheckpointPoll:     *ckptPoll,
		JournalDir:         *journalDir,
		AuditFrac:          *auditFrac,
		ProbationAudits:    *probAudits,
		QuarantineCooldown: *quarCooldown,
		Seed:               *seed,
	}
	if err := serve(*addr, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "qrelcoord:", err)
		os.Exit(cliutil.ExitCode(err))
	}
}

// serve runs the coordinator until SIGTERM/SIGINT, then shuts the
// listener down gracefully (in-flight requests finish) and exits 0.
func serve(addr string, cfg cluster.Config) error {
	if len(cfg.Replicas) == 0 {
		return cliutil.UsageErrorf("no replicas configured: pass -replica URL (repeatable) or -replicas url1,url2,...")
	}
	coord, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	defer coord.Close()

	if cfg.JournalDir != "" {
		// Drive journaled fan-outs a previous process left running to
		// completion in the background; the listener serves (and de-dupes
		// against the same journal) meanwhile.
		go func() {
			n, err := coord.Recover(context.Background())
			if err != nil {
				log.Printf("journal recovery: %v", err)
			}
			if n > 0 {
				log.Printf("journal recovery: completed %d fan-out(s)", n)
			}
		}()
	}

	// Listen explicitly so the resolved address (the kernel-picked port
	// when addr is ":0") is logged before serving starts; the cluster
	// smoke script parses this line.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: coord.Handler()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("qrelcoord listening on %s fronting %d replica(s)", ln.Addr(), len(cfg.Replicas))
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		return err
	case got := <-sig:
		log.Printf("%v: shutting down", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	log.Printf("qrelcoord exiting")
	return nil
}
