// Command qrelsoak runs a deterministic chaos-soak campaign against
// the reliability stack: a seeded fault schedule over every registered
// faultinject site, a mixed generated workload through the engine
// ladder, a live in-process qreld, and a multi-node qrelcoord cluster
// (replica kills, partitions, slow replicas, coordinator restarts —
// merged answers must stay bit-identical to a single node), with a
// differential oracle holding every result to the exact reference (see
// internal/chaos). The cluster scenarios are scheduled via the
// cluster/* fault sites; -list-sites shows the full registry.
//
// The verdict is a JSON report; the exit status is 0 only when every
// invariant held. Same seed, same schedule hash, same per-invariant
// verdicts — a failing seed is a reproducer, not an anecdote.
//
// Usage:
//
//	qrelsoak -seed 1                        # short default campaign
//	qrelsoak -seed 7 -steps 20              # longer soak
//	qrelsoak -duration 30s                  # stop starting steps after 30s
//	qrelsoak -sites engine/qfree,ckpt/crash-window
//	qrelsoak -report soak.json              # write the report to a file
//	qrelsoak -list-sites                    # print the site registry
//	qrelsoak -eps-skew 0.01                 # arm a wrong oracle (must fail)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"qrel/internal/chaos"
	"qrel/internal/faultinject"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "campaign seed; fully determines the fault schedule")
		steps     = flag.Int("steps", chaos.DefaultSteps, "number of campaign steps")
		duration  = flag.Duration("duration", 0, "stop starting new steps after this long (0 = run all steps)")
		sites     = flag.String("sites", "", "comma-separated site filter (default: every registered site)")
		report    = flag.String("report", "", "write the JSON report to this file ('-' or empty = stdout)")
		dir       = flag.String("dir", "", "scratch directory (default: a fresh temp dir, removed on success)")
		epsSkew   = flag.Float64("eps-skew", 0, "multiply the allowed eps by this factor — a deliberately wrong oracle for harness self-tests (0 = honest)")
		listSites = flag.Bool("list-sites", false, "print the fault-site registry and exit")
		quiet     = flag.Bool("quiet", false, "suppress per-step progress lines")
	)
	flag.Parse()

	if *listSites {
		for _, s := range faultinject.Sites() {
			fmt.Println(s)
		}
		return
	}

	cfg := chaos.Config{
		Seed:     *seed,
		Steps:    *steps,
		Duration: *duration,
		EpsSkew:  *epsSkew,
	}
	if *sites != "" {
		for _, s := range strings.Split(*sites, ",") {
			if s = strings.TrimSpace(s); s != "" {
				cfg.Sites = append(cfg.Sites, s)
			}
		}
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	scratch := *dir
	madeScratch := false
	if scratch == "" {
		var err error
		scratch, err = os.MkdirTemp("", "qrelsoak-")
		if err != nil {
			fatalf("creating scratch dir: %v", err)
		}
		madeScratch = true
	}
	cfg.Dir = scratch

	start := time.Now()
	rep, err := chaos.Run(cfg)
	if err != nil {
		fatalf("%v", err)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshaling report: %v", err)
	}
	out = append(out, '\n')
	if *report == "" || *report == "-" {
		os.Stdout.Write(out)
	} else if err := os.WriteFile(*report, out, 0o666); err != nil {
		fatalf("writing report: %v", err)
	}

	if !rep.Passed {
		failed := 0
		for name, stat := range rep.Invariants {
			if stat.Failures == 0 {
				continue
			}
			failed++
			fmt.Fprintf(os.Stderr, "FAIL %s: %d/%d checks failed\n", name, stat.Failures, stat.Checks)
			for _, e := range stat.Examples {
				fmt.Fprintf(os.Stderr, "  %s\n", e)
			}
		}
		fmt.Fprintf(os.Stderr, "soak FAILED: %d invariant(s) violated (seed %d, schedule %s, %v)\n",
			failed, rep.Seed, rep.ScheduleHash[:12], time.Since(start).Round(time.Millisecond))
		// Keep the scratch dir: it holds the stores and journals the
		// failure happened in.
		if madeScratch {
			fmt.Fprintf(os.Stderr, "scratch kept at %s\n", scratch)
		}
		os.Exit(1)
	}
	if madeScratch {
		os.RemoveAll(scratch)
	}
	fmt.Fprintf(os.Stderr, "soak PASSED: %d/%d steps, %d sites fired, seed %d, schedule %s, %v\n",
		rep.StepsRun, rep.Steps, firedSites(rep), rep.Seed, rep.ScheduleHash[:12], time.Since(start).Round(time.Millisecond))
}

func firedSites(rep *chaos.Report) int {
	n := 0
	for _, c := range rep.Sites {
		if c.Fires > 0 {
			n++
		}
	}
	return n
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qrelsoak: "+format+"\n", args...)
	os.Exit(1)
}
