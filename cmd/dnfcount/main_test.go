package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testDNF = `p dnf 3 2
1 -2 0
3 0
`

func writeDNF(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "f.dnf")
	if err := os.WriteFile(path, []byte(testDNF), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestCountingMethodsAgree(t *testing.T) {
	path := writeDNF(t)
	// x0&!x1 | x2 over 3 vars: assignments {100,101,001,011,111} → 5.
	for _, method := range []string{"brute", "ie", "bdd"} {
		out, err := captureStdout(t, func() error {
			return run(path, method, 0.05, 0.05, 1, "")
		})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if !strings.Contains(out, "#models = 5") {
			t.Errorf("%s: wrong count:\n%s", method, out)
		}
	}
}

func TestKarpLubyMethod(t *testing.T) {
	path := writeDNF(t)
	out, err := captureStdout(t, func() error {
		return run(path, "karpluby", 0.1, 0.1, 1, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "estimate = ") {
		t.Errorf("no estimate:\n%s", out)
	}
}

func TestProbabilityMethods(t *testing.T) {
	path := writeDNF(t)
	probs := "1/2,1/2,1/2"
	for _, method := range []string{"brute", "ie", "bdd", "karpluby", "thm53"} {
		out, err := captureStdout(t, func() error {
			return run(path, method, 0.1, 0.1, 1, probs)
		})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if !strings.Contains(out, "Prob = ") && !strings.Contains(out, "estimate = ") {
			t.Errorf("%s: no result:\n%s", method, out)
		}
		// Exact methods must print 5/8.
		if method == "brute" || method == "ie" || method == "bdd" {
			if !strings.Contains(out, "5/8") {
				t.Errorf("%s: wrong probability:\n%s", method, out)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeDNF(t)
	cases := []struct {
		name string
		fn   func() error
	}{
		{"missing in", func() error { return run("", "bdd", 0.1, 0.1, 1, "") }},
		{"missing file", func() error { return run("/nonexistent", "bdd", 0.1, 0.1, 1, "") }},
		{"bad method", func() error { return run(path, "bogus", 0.1, 0.1, 1, "") }},
		{"bad eps", func() error { return run(path, "bdd", 1.5, 0.1, 1, "") }},
		{"bad delta", func() error { return run(path, "bdd", 0.1, 0, 1, "") }},
		{"probs length", func() error { return run(path, "bdd", 0.1, 0.1, 1, "1/2") }},
		{"probs syntax", func() error { return run(path, "bdd", 0.1, 0.1, 1, "a,b,c") }},
		{"thm53 needs probs", func() error { return run(path, "thm53", 0.1, 0.1, 1, "") }},
	}
	for _, c := range cases {
		if _, err := captureStdout(t, c.fn); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// TestCorruptInputs feeds broken DNF files through every method and
// demands a one-line error, never a panic.
func TestCorruptInputs(t *testing.T) {
	cases := []struct {
		name string
		dnf  string
	}{
		{"empty file", ""},
		{"binary junk", "\x00\x01\xff\xfe\x89PNG"},
		{"bad header", "p cnf 3 2\n1 0\n"},
		{"non-numeric counts", "p dnf three two\n1 0\n"},
		{"negative var count", "p dnf -3 1\n1 0\n"},
		{"literal out of range", "p dnf 2 1\n5 0\n"},
		{"zero literal only", "p dnf 2 1\n0\n0\n0\n"},
		{"unterminated term", "p dnf 2 1\n1 2"},
	}
	for _, c := range cases {
		path := filepath.Join(t.TempDir(), "corrupt.dnf")
		if err := os.WriteFile(path, []byte(c.dnf), 0o644); err != nil {
			t.Fatal(err)
		}
		for _, method := range []string{"brute", "ie", "bdd", "karpluby"} {
			t.Run(c.name+"/"+method, func(t *testing.T) {
				_, err := captureStdout(t, func() error {
					return run(path, method, 0.1, 0.1, 1, "")
				})
				if err == nil {
					t.Skip("parser tolerates this input; acceptable as long as it does not panic")
				}
				if strings.Contains(err.Error(), "\n") {
					t.Errorf("multi-line error for corrupt input: %q", err)
				}
			})
		}
	}
}
