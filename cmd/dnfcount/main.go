// Command dnfcount counts (or estimates) the satisfying assignments of
// a DNF formula in DIMACS-style format, exercising the counting stack
// of Theorem 5.2: exact brute force, exact inclusion–exclusion, exact
// BDD compilation, and the Karp–Luby FPTRAS.
//
// Usage:
//
//	dnfcount -in formula.dnf -method karpluby -eps 0.05 -delta 0.05
//
// With -probs 'p1,p2,...' (one rational per variable) the weighted
// problem Prob-DNF is solved instead, including the paper's Theorem 5.3
// binary-encoding reduction (-method thm53).
package main

import (
	"flag"
	"fmt"
	"math/big"
	"math/rand"
	"os"
	"strings"

	"qrel/internal/bdd"
	"qrel/internal/cliutil"
	"qrel/internal/karpluby"
	"qrel/internal/prop"
)

func main() {
	var (
		in     = flag.String("in", "", "DNF file in DIMACS-style format; '-' for stdin")
		method = flag.String("method", "bdd", "method: brute|ie|bdd|karpluby|thm53")
		eps    = flag.Float64("eps", 0.05, "relative error (karpluby, thm53)")
		delta  = flag.Float64("delta", 0.05, "failure probability (karpluby, thm53)")
		seed   = flag.Int64("seed", 1, "random seed")
		probs  = flag.String("probs", "", "comma-separated variable probabilities (rationals); empty = count models")
	)
	flag.Parse()
	if err := run(*in, *method, *eps, *delta, *seed, *probs); err != nil {
		fmt.Fprintln(os.Stderr, "dnfcount:", err)
		os.Exit(cliutil.ExitCode(err))
	}
}

func run(in, method string, eps, delta float64, seed int64, probsCSV string) (err error) {
	defer cliutil.Recover(&err)
	if in == "" {
		return cliutil.UsageErrorf("-in is required")
	}
	switch method {
	case "brute", "ie", "bdd", "karpluby", "thm53":
	default:
		return cliutil.UsageErrorf("unknown method %q", method)
	}
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		return cliutil.UsageErrorf("-eps and -delta must lie in (0, 1)")
	}
	f := os.Stdin
	if in != "-" {
		var err error
		f, err = os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	d, err := prop.ParseDNF(f)
	if err != nil {
		return err
	}
	fmt.Printf("formula: %d variables, %d terms, width %d\n", d.NumVars, len(d.Terms), d.Width())

	var p prop.ProbAssignment
	if probsCSV != "" {
		parts := strings.Split(probsCSV, ",")
		if len(parts) != d.NumVars {
			return fmt.Errorf("-probs lists %d probabilities, formula has %d variables", len(parts), d.NumVars)
		}
		p = make(prop.ProbAssignment, d.NumVars)
		for i, s := range parts {
			r, ok := new(big.Rat).SetString(strings.TrimSpace(s))
			if !ok {
				return fmt.Errorf("bad probability %q", s)
			}
			p[i] = r
		}
	}
	rng := rand.New(rand.NewSource(seed))

	switch method {
	case "brute":
		if p == nil {
			c, err := d.CountBruteForce(30)
			if err != nil {
				return err
			}
			fmt.Printf("#models = %v\n", c)
		} else {
			pr, err := d.ProbBruteForce(p, 24)
			if err != nil {
				return err
			}
			fmt.Printf("Prob = %s (= %.6g)\n", pr.RatString(), ratF(pr))
		}
	case "ie":
		if p == nil {
			c, err := d.CountInclusionExclusion(24)
			if err != nil {
				return err
			}
			fmt.Printf("#models = %v\n", c)
		} else {
			pr, err := d.ProbInclusionExclusion(p, 24)
			if err != nil {
				return err
			}
			fmt.Printf("Prob = %s (= %.6g)\n", pr.RatString(), ratF(pr))
		}
	case "bdd":
		mgr := bdd.New(d.NumVars, 0)
		root, err := mgr.FromDNF(d)
		if err != nil {
			return err
		}
		fmt.Printf("BDD size: %d nodes\n", mgr.Size(root))
		if p == nil {
			fmt.Printf("#models = %v\n", mgr.Count(root))
		} else {
			pr, err := mgr.Prob(root, p)
			if err != nil {
				return err
			}
			fmt.Printf("Prob = %s (= %.6g)\n", pr.RatString(), ratF(pr))
		}
	case "karpluby":
		var res karpluby.CountResult
		if p == nil {
			res, err = karpluby.CountDNF(d, eps, delta, rng)
		} else {
			res, err = karpluby.ProbDNF(d, p, eps, delta, rng)
		}
		if err != nil {
			return err
		}
		fmt.Printf("estimate = %.6g  (%d samples, %d hits, relative error %.3g at confidence %.3g)\n",
			res.Float(), res.Samples, res.Hits, eps, 1-delta)
	case "thm53":
		if p == nil {
			return cliutil.UsageErrorf("-method thm53 solves Prob-kDNF; provide -probs")
		}
		red, err := karpluby.Reduce(d, p)
		if err != nil {
			return err
		}
		fmt.Printf("Theorem 5.3 reduction: %d bits, %d terms in phi'', %v legal of 2^%d assignments\n",
			red.Bits, len(red.PhiPP.Terms), red.Legal, red.Bits)
		res, err := karpluby.CountDNF(red.PhiPP, eps, delta, rng)
		if err != nil {
			return err
		}
		fmt.Printf("estimate = %.6g  (%d samples)\n", ratF(red.Recover(res.Estimate)), res.Samples)
	default:
		return fmt.Errorf("unknown method %q", method)
	}
	return nil
}

func ratF(r *big.Rat) float64 {
	f, _ := r.Float64()
	return f
}
