package main

import (
	"fmt"
	"math"
	"math/rand"

	"qrel/internal/core"
	"qrel/internal/logic"
	"qrel/internal/mc"
	"qrel/internal/rel"
	"qrel/internal/workload"
)

// runE8 reproduces Theorem 5.12: for a polynomial-time evaluable query
// with quantifier alternation (outside every fragment with an exact
// fast engine), the ξ-padded Monte Carlo estimator achieves
// Pr[|M(D) − R_psi(D)| > ε] < δ, with the paper's sample size
// t(ε, δ) = ⌈(9/2ξε²)·ln(1/δ)⌉ (run at ε/2 per the proof). The trials
// column reports the empirically measured failure rate over repeated
// runs; the structural-vs-algebraic padding check confirms that the
// literal database modification D' and the Bernoulli shortcut estimate
// the same quantity.
func runE8(cfg config, out *report) error {
	query := logic.MustParse("forall x . exists y . E(x,y)", nil)
	rng := rand.New(rand.NewSource(cfg.seed))
	db := workload.RandomUDB(rng, 4, 8)
	exact, err := core.WorldEnum(cfg.ctx, db, query, core.Options{})
	if err != nil {
		return err
	}
	pred := func(b *rel.Structure) (bool, error) { return logic.EvalSentence(b, query) }
	nuExact := exact.HFloat // Boolean query: H = nu or 1-nu
	obs, err := logic.EvalSentence(db.A, query)
	if err != nil {
		return err
	}
	if obs {
		nuExact = 1 - exact.HFloat
	}

	const xi = 0.25
	params := []struct{ eps, delta float64 }{
		{0.2, 0.1}, {0.1, 0.1}, {0.05, 0.05},
	}
	trials := 30
	if cfg.quick {
		trials = 10
		params = params[:2]
	}
	out.row("eps", "delta", "t(eps/2,delta)", "trials", "max |err|", "fail rate", "ok")
	allOK := true
	for _, p := range params {
		tWant, err := mc.PaperSampleSize(xi, p.eps/2, p.delta)
		if err != nil {
			return err
		}
		failures := 0
		maxErr := 0.0
		for trial := 0; trial < trials; trial++ {
			est, err := mc.EstimateNuPadded(cfg.ctx, db, pred, xi, p.eps, p.delta, 0,
				rand.New(rand.NewSource(cfg.seed+int64(trial)*101)))
			if err != nil {
				return err
			}
			if est.Samples != tWant {
				return errf("sample size %d, formula gives %d", est.Samples, tWant)
			}
			e := math.Abs(est.Value - nuExact)
			if e > maxErr {
				maxErr = e
			}
			if e > p.eps {
				failures++
			}
		}
		rate := float64(failures) / float64(trials)
		ok := rate <= 2*p.delta // generous: delta is an upper bound
		allOK = allOK && ok
		out.row(p.eps, p.delta, tWant, trials, maxErr, rate, ok)
	}
	out.check("padded estimator meets the absolute (eps, delta) guarantee", allOK)

	// Structural vs algebraic padding: both estimate nu within eps.
	est1, err := mc.EstimateNuPadded(cfg.ctx, db, pred, xi, 0.1, 0.05, 0, rand.New(rand.NewSource(cfg.seed)))
	if err != nil {
		return err
	}
	est2, err := mc.EstimateNuPaddedStructural(cfg.ctx, db, pred, xi, 0.1, 0.05, 0, rand.New(rand.NewSource(cfg.seed)))
	if err != nil {
		return err
	}
	out.row("padding", "algebraic", "-", "-", math.Abs(est1.Value-nuExact), "-", "-")
	out.row("padding", "structural", "-", "-", math.Abs(est2.Value-nuExact), "-", "-")
	out.check("structural (paper-literal) and algebraic padding agree within eps",
		math.Abs(est1.Value-nuExact) <= 0.1 && math.Abs(est2.Value-nuExact) <= 0.1)
	return nil
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
