package main

import (
	"math/big"
	"math/rand"

	"qrel/internal/core"
	"qrel/internal/logic"
	"qrel/internal/rel"
	"qrel/internal/safeplan"
	"qrel/internal/unreliable"
	"qrel/internal/workload"
)

// runE12 exercises the Dalvi–Suciu safe-plan extension: hierarchical
// conjunctive queries without self-joins are evaluated exactly in
// polynomial time, agreeing with the intensional engines wherever both
// run and scaling to databases far beyond enumeration; non-hierarchical
// queries — the boundary where Proposition 3.2's #P-hardness begins —
// are provably rejected.
func runE12(cfg config, out *report) error {
	out.row("query", "n", "uncertain", "engine", "R", "agree/ok", "time")
	queries := []string{
		"exists x . S(x)",
		"exists x y . S(x) & E(x,y)",
	}
	sizes := []int{8, 32, 128}
	if cfg.quick {
		sizes = []int{8, 32}
	}
	allAgree := true
	for _, src := range queries {
		f := logic.MustParse(src, nil)
		for _, n := range sizes {
			rng := rand.New(rand.NewSource(cfg.seed + int64(n)))
			db := e12DB(rng, n)
			var sp core.Result
			dt, err := timeIt(func() error {
				var err error
				sp, err = core.SafePlan(cfg.ctx, db, f, core.Options{})
				return err
			})
			if err != nil {
				return err
			}
			agree := "-"
			if db.NumUncertain() <= 14 {
				we, err := core.WorldEnum(cfg.ctx, db, f, core.Options{})
				if err != nil {
					return err
				}
				ok := sp.H.Cmp(we.H) == 0
				allAgree = allAgree && ok
				agree = boolStr(ok)
			} else {
				// Cross-check against the exact BDD at scale.
				bddRes, err := core.LineageBDD(cfg.ctx, db, f, core.Options{})
				if err != nil {
					return err
				}
				ok := sp.H.Cmp(bddRes.H) == 0
				allAgree = allAgree && ok
				agree = boolStr(ok)
			}
			out.row(src, n, db.NumUncertain(), sp.Engine, sp.RFloat, agree, dt)
		}
	}
	out.check("safe plan agrees exactly with the intensional engines", allAgree)

	// Scale demonstration: n = 500, ~1000 uncertain atoms, still exact.
	n := 500
	if cfg.quick {
		n = 200
	}
	s := rel.MustStructure(n, workload.GraphVoc())
	db := unreliable.New(s)
	for i := 0; i < n; i++ {
		s.MustAdd("S", i)
		db.MustSetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{i}}, big.NewRat(1, 3))
		s.MustAdd("E", i, (i+1)%n)
		db.MustSetError(rel.GroundAtom{Rel: "E", Args: rel.Tuple{i, (i + 1) % n}}, big.NewRat(1, 4))
	}
	f := logic.MustParse("exists x y . S(x) & E(x,y)", nil)
	var sp core.Result
	dt, err := timeIt(func() error {
		var err error
		sp, err = core.SafePlan(cfg.ctx, db, f, core.Options{})
		return err
	})
	if err != nil {
		return err
	}
	out.row("scale", n, db.NumUncertain(), sp.Engine, sp.RFloat, "-", dt)
	out.check("safe plan handles thousands of uncertain atoms exactly", sp.H != nil)

	// Boundary: H0 is rejected with ErrNotHierarchical.
	h0, err := safeplan.FromFormula(logic.MustParse("exists x y . S(x) & E(x,y) & T(y)", nil))
	if err != nil {
		return err
	}
	if !h0.IsHierarchical() {
		out.check("H0 detected as non-hierarchical (the hardness boundary)", true)
	} else {
		out.check("H0 detected as non-hierarchical (the hardness boundary)", false)
	}
	return nil
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// e12DB builds a database that is uncertain where it matters: no
// certain facts at all, a handful of maybe-present S labels and E edges
// touching them, so the query probability is genuinely in (0, 1).
func e12DB(rng *rand.Rand, n int) *unreliable.DB {
	s := rel.MustStructure(n, workload.GraphVoc())
	db := unreliable.New(s)
	for i := 0; i < 6; i++ {
		v := rng.Intn(n)
		db.MustSetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{v}}, big.NewRat(int64(1+rng.Intn(3)), 5))
		db.MustSetError(rel.GroundAtom{Rel: "E", Args: rel.Tuple{v, rng.Intn(n)}}, big.NewRat(1, 3))
	}
	return db
}
