package main

import (
	"context"
	"os"
	"strings"
	"testing"
	"time"
)

// captureStdout redirects the report output during a test run.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	var sb strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String(), runErr
}

// runExperiment executes one experiment in quick mode and asserts every
// check passed.
func runExperiment(t *testing.T, name string, fn func(config, *report) error) {
	t.Helper()
	out, err := captureStdout(t, func() error {
		rep := newReport(name, "test")
		start := time.Now()
		err := fn(config{seed: 1998, quick: true, ctx: context.Background()}, rep)
		rep.finish(time.Since(start), err)
		if err != nil {
			return err
		}
		if !rep.pass {
			t.Errorf("%s: checks failed: %v", name, rep.fails)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("%s: %v\n%s", name, err, out)
	}
	if !strings.Contains(out, "PASS") {
		t.Errorf("%s: no PASS in output:\n%s", name, out)
	}
}

// The cheap experiments run end to end in CI; the expensive ones (E8,
// E10) are exercised by `go run ./cmd/benchrel` and the benchmarks.
func TestExperimentE1(t *testing.T)  { runExperiment(t, "E1", runE1) }
func TestExperimentE3(t *testing.T)  { runExperiment(t, "E3", runE3) }
func TestExperimentE5(t *testing.T)  { runExperiment(t, "E5", runE5) }
func TestExperimentE7(t *testing.T)  { runExperiment(t, "E7", runE7) }
func TestExperimentE9(t *testing.T)  { runExperiment(t, "E9", runE9) }
func TestExperimentE11(t *testing.T) { runExperiment(t, "E11", runE11) }

func TestExperimentE2(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runExperiment(t, "E2", runE2)
}

func TestExperimentE4(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runExperiment(t, "E4", runE4)
}

func TestExperimentE6(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runExperiment(t, "E6", runE6)
}

func TestReportFormatting(t *testing.T) {
	out, _ := captureStdout(t, func() error {
		rep := newReport("EX", "demo claim")
		rep.row("col1", "col2")
		rep.row(1, 2.5)
		rep.check("good", true)
		rep.check("bad", false)
		rep.finish(time.Millisecond, nil)
		return nil
	})
	for _, want := range []string{"EX — demo claim", "col1", "ok: good", "FAIL: bad", "EX: FAIL"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentE12(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runExperiment(t, "E12", runE12)
}

func TestExperimentE13(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runExperiment(t, "E13", runE13)
}
