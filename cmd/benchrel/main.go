// Command benchrel regenerates the experiment tables of EXPERIMENTS.md:
// one experiment per proposition/theorem of the paper (see DESIGN.md
// §3 for the index). Every experiment prints a table of measurements
// and a PASS/FAIL verdict for the paper's claim on this workload.
//
// Usage:
//
//	benchrel                  # run everything
//	benchrel -experiment E4   # one experiment
//	benchrel -quick           # smaller sweeps (CI-sized)
//	benchrel -seed 7          # different workload seed
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// config carries the harness parameters into each experiment.
type config struct {
	seed  int64
	quick bool
	// ctx carries the harness-wide deadline (-timeout) into every engine
	// call; context.Background() when no timeout is set.
	ctx context.Context
}

// experiment is one reproducible experiment.
type experiment struct {
	id    string
	claim string
	run   func(cfg config, out *report) error
}

func main() {
	var (
		which   = flag.String("experiment", "all", "experiment id (E1..E13) or 'all'")
		seed    = flag.Int64("seed", 1998, "workload seed")
		quick   = flag.Bool("quick", false, "smaller parameter sweeps")
		timeout = flag.Duration("timeout", 0, "wall-clock limit for the whole run (0 = none)")
	)
	flag.Parse()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	cfg := config{seed: *seed, quick: *quick, ctx: ctx}
	exps := []experiment{
		{"E1", "Prop 3.1: quantifier-free reliability is computable in polynomial time", runE1},
		{"E2", "Prop 3.2: conjunctive expected error encodes #MONOTONE-2SAT exactly", runE2},
		{"E3", "Thm 4.2: the #P oracle count recovers the exact probability; padding junk never interferes", runE3},
		{"E4", "Thm 5.2 (Karp–Luby): #DNF has an FPTRAS; naive MC fails on low-density instances", runE4},
		{"E5", "Thm 5.3: the binary-encoding reduction solves Prob-kDNF exactly and blows up polynomially", runE5},
		{"E6", "Thm 5.4 + Cor 5.5: existential query probability has an FPTRAS; reliability approximable", runE6},
		{"E7", "Lemmas 5.7/5.9: AR is polynomial for qfree queries and encodes 4-colourability for existential ones", runE7},
		{"E8", "Thm 5.12: padded Monte Carlo achieves absolute (eps, delta) for poly-time queries", runE8},
		{"E9", "Thm 6.2: metafinite qfree reliability in FP; aggregate reliability exact via enumeration", runE9},
		{"E10", "Ablations: direct weighted KL vs Thm 5.3 route; per-tuple vs direct MC; BDD vs brute force", runE10},
		{"E11", "Datalog (Section 4 extension): network reliability matches closed forms; MC within bound", runE11},
		{"E12", "Safe-plan extension (Dalvi–Suciu): hierarchical conjunctive queries exact in PTIME", runE12},
		{"E13", "Data vs expression complexity: Prop 3.1 polynomial in n, exponential in n(psi)", runE13},
	}
	failed := 0
	ran := 0
	for _, e := range exps {
		if *which != "all" && !strings.EqualFold(*which, e.id) {
			continue
		}
		ran++
		rep := newReport(e.id, e.claim)
		start := time.Now()
		err := e.run(cfg, rep)
		rep.finish(time.Since(start), err)
		if err != nil || !rep.pass {
			failed++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "benchrel: unknown experiment %q\n", *which)
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchrel: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}

// report accumulates one experiment's table and verdicts.
type report struct {
	id     string
	tw     *tabwriter.Writer
	pass   bool
	checks []string
	fails  []string
}

func newReport(id, claim string) *report {
	fmt.Printf("\n=== %s — %s ===\n", id, claim)
	return &report{
		id:   id,
		tw:   tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0),
		pass: true,
	}
}

// row writes one tab-separated table row.
func (r *report) row(cells ...any) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			parts[i] = fmt.Sprintf("%.6g", v)
		case time.Duration:
			parts[i] = v.Round(time.Microsecond).String()
		default:
			parts[i] = fmt.Sprint(c)
		}
	}
	fmt.Fprintln(r.tw, strings.Join(parts, "\t"))
}

// check records a named boolean verdict.
func (r *report) check(name string, ok bool) {
	if ok {
		r.checks = append(r.checks, name)
		return
	}
	r.pass = false
	r.fails = append(r.fails, name)
}

func (r *report) finish(elapsed time.Duration, err error) {
	r.tw.Flush()
	if err != nil {
		fmt.Printf("ERROR: %v\n", err)
		r.pass = false
	}
	sort.Strings(r.checks)
	for _, c := range r.checks {
		fmt.Printf("  ok: %s\n", c)
	}
	for _, c := range r.fails {
		fmt.Printf("  FAIL: %s\n", c)
	}
	verdict := "PASS"
	if !r.pass {
		verdict = "FAIL"
	}
	fmt.Printf("%s: %s (%s)\n", r.id, verdict, elapsed.Round(time.Millisecond))
}

// timeIt measures fn.
func timeIt(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}
