package main

import (
	"math/rand"
	"time"

	"qrel/internal/core"
	"qrel/internal/logic"
	"qrel/internal/reductions"
	"qrel/internal/workload"
)

// runE7 reproduces the absolute-reliability results of Section 5:
// Lemma 5.7 (AR of quantifier-free queries decided in polynomial time —
// timed sweep) and Lemma 5.9 (for the fixed existential query of the
// 4-colourability reduction, D ∉ AR_psi iff the graph is 4-colourable —
// verified instance by instance against a backtracking solver, with the
// witness world decoded into an explicit proper colouring).
func runE7(cfg config, out *report) error {
	// Lemma 5.9 equivalence.
	out.row("graph", "n", "edges", "4-colourable", "D in AR", "agree", "time")
	rng := rand.New(rand.NewSource(cfg.seed))
	sizes := []int{3, 4, 5, 6}
	if cfg.quick {
		sizes = []int{3, 4, 5}
	}
	allAgree := true
	sawColorable, sawUncolorable := false, false
	for i, n := range sizes {
		var g *reductions.Graph
		if i == len(sizes)-1 {
			// Force a non-4-colourable instance: K5 plus isolated vertices.
			g = reductions.NewGraph(n)
			for u := 0; u < 5 && u < n; u++ {
				for v := u + 1; v < 5 && v < n; v++ {
					g.MustAddEdge(u, v)
				}
			}
		} else {
			g = reductions.RandomGraph(rng, n, 0.5)
			if g.NumEdges() == 0 {
				g.MustAddEdge(0, 1)
			}
		}
		inst, err := reductions.BuildFourColInstance(g)
		if err != nil {
			return err
		}
		var res core.AbsoluteResult
		dt, err := timeIt(func() error {
			var err error
			res, err = core.AbsoluteReliability(inst.DB, inst.Query, core.Options{MaxEnumAtoms: 12})
			return err
		})
		if err != nil {
			return err
		}
		_, colorable := g.KColoring(4)
		agree := colorable != res.Reliable
		if colorable {
			sawColorable = true
			colors := reductions.ColoringFromWorld(res.Witness)
			agree = agree && g.IsProperColoring(colors)
		} else {
			sawUncolorable = true
		}
		allAgree = allAgree && agree
		out.row("G"+itoa(i), n, g.NumEdges(), colorable, res.Reliable, agree, dt)
	}
	out.check("Lemma 5.9: not-AR iff 4-colourable, witness decodes to a proper colouring", allAgree)
	out.check("both 4-colourable and non-colourable instances exercised", sawColorable && sawUncolorable)

	// Lemma 5.7: quantifier-free AR scales polynomially.
	qf := logic.MustParse("S(x) & !E(x,x)", nil)
	qfSizes := []int{16, 32, 64, 128}
	if cfg.quick {
		qfSizes = []int{16, 32, 64}
	}
	var times []time.Duration
	for _, n := range qfSizes {
		rngN := rand.New(rand.NewSource(cfg.seed + int64(n)))
		db := workload.AddUncertainty(rngN, workload.RandomStructure(rngN, n, 0.2, 0.5), n, 10)
		dt, err := timeIt(func() error {
			_, err := core.AbsoluteReliability(db, qf, core.Options{})
			return err
		})
		if err != nil {
			return err
		}
		times = append(times, dt)
		out.row("qfree-AR", n, "-", "-", "-", "-", dt)
	}
	nRatio := float64(qfSizes[len(qfSizes)-1]) / float64(qfSizes[0])
	growth := float64(times[len(times)-1]) / float64(maxDuration(times[0], time.Microsecond))
	out.check("Lemma 5.7: quantifier-free AR decided in polynomial time", growth < 64*nRatio*nRatio)
	return nil
}
