package main

import (
	"math"
	"math/big"
	"math/rand"

	"qrel/internal/datalog"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

// runE11 exercises the Datalog extension (Section 4 covers Datalog
// queries explicitly — de Rougemont had proved the FP^#P bound for
// them): two-terminal network reliability with independent link
// failures. The exact engine (world enumeration) is cross-checked
// against an independent inclusion-free computation on
// series-parallel cases with known closed forms, and the Monte Carlo
// estimator must stay inside its absolute-error bound.
func runE11(cfg config, out *report) error {
	prog := datalog.MustParse(`
Reach(x,y) :- Link(x,y).
Reach(x,z) :- Reach(x,y), Link(y,z).
`)
	out.row("topology", "links", "uncertain", "R exact", "closed form", "agree", "time")

	// Closed-form cases: a k-link series chain 0→1→...→k with failure
	// probability f per link has Pr[Reach(0,k)] = (1-f)^k; the observed
	// database is connected, so R = (1-f)^k.
	f := big.NewRat(1, 5)
	oneMinusF := new(big.Rat).Sub(big.NewRat(1, 1), f)
	allAgree := true
	for _, k := range []int{2, 4, 8} {
		db, err := chainDB(k, f)
		if err != nil {
			return err
		}
		q := datalog.Atom{Pred: "Reach", Args: []datalog.Term{datalog.E(0), datalog.E(k)}}
		var res datalog.Result
		dt, err := timeIt(func() error {
			var err error
			res, err = datalog.Reliability(db, prog, q, 16)
			return err
		})
		if err != nil {
			return err
		}
		want := big.NewRat(1, 1)
		for i := 0; i < k; i++ {
			want.Mul(want, oneMinusF)
		}
		agree := res.R.Cmp(want) == 0
		allAgree = allAgree && agree
		wf, _ := want.Float64()
		out.row("series-"+itoa(k), k, db.NumUncertain(), res.RFloat, wf, agree, dt)
	}
	// Parallel: two disjoint 2-hop routes 0→a→3; Pr[connected] =
	// 1 − (1 − (1-f)²)².
	db, err := parallelDB(f)
	if err != nil {
		return err
	}
	q := datalog.Atom{Pred: "Reach", Args: []datalog.Term{datalog.E(0), datalog.E(3)}}
	res, err := datalog.Reliability(db, prog, q, 16)
	if err != nil {
		return err
	}
	route := new(big.Rat).Mul(oneMinusF, oneMinusF)
	fail := new(big.Rat).Sub(big.NewRat(1, 1), route)
	fail.Mul(fail, fail)
	want := new(big.Rat).Sub(big.NewRat(1, 1), fail)
	agree := res.R.Cmp(want) == 0
	allAgree = allAgree && agree
	wf, _ := want.Float64()
	out.row("parallel-2x2", 4, db.NumUncertain(), res.RFloat, wf, agree, "-")
	out.check("exact Datalog reliability matches series/parallel closed forms", allAgree)

	// Monte Carlo on a random mesh against the exact engine.
	rng := rand.New(rand.NewSource(cfg.seed))
	mesh, err := meshDB(rng, 6, 7, f)
	if err != nil {
		return err
	}
	qMesh := datalog.Atom{Pred: "Reach", Args: []datalog.Term{datalog.V("x"), datalog.E(0)}}
	exact, err := datalog.Reliability(mesh, prog, qMesh, 16)
	if err != nil {
		return err
	}
	est, err := datalog.ReliabilityMC(mesh, prog, qMesh, 0.02, 0.02, rng)
	if err != nil {
		return err
	}
	absErr := math.Abs(est.RFloat - exact.RFloat)
	out.row("mesh-MC", 7, mesh.NumUncertain(), est.RFloat, exact.RFloat, absErr <= 0.02, est.Samples)
	out.check("Datalog Monte Carlo within its absolute-error bound", absErr <= 0.02)
	return nil
}

func linkVoc() *rel.Vocabulary {
	return rel.MustVocabulary(rel.RelSym{Name: "Link", Arity: 2})
}

// chainDB builds the series chain 0→1→...→k with failure probability f
// per (directed) link.
func chainDB(k int, f *big.Rat) (*unreliable.DB, error) {
	s, err := rel.NewStructure(k+1, linkVoc())
	if err != nil {
		return nil, err
	}
	db := unreliable.New(s)
	for i := 0; i < k; i++ {
		s.MustAdd("Link", i, i+1)
		if err := db.SetError(rel.GroundAtom{Rel: "Link", Args: rel.Tuple{i, i + 1}}, f); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// parallelDB builds two disjoint 2-hop routes 0→1→3 and 0→2→3.
func parallelDB(f *big.Rat) (*unreliable.DB, error) {
	s, err := rel.NewStructure(4, linkVoc())
	if err != nil {
		return nil, err
	}
	db := unreliable.New(s)
	for _, l := range [][2]int{{0, 1}, {1, 3}, {0, 2}, {2, 3}} {
		s.MustAdd("Link", l[0], l[1])
		if err := db.SetError(rel.GroundAtom{Rel: "Link", Args: rel.Tuple{l[0], l[1]}}, f); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// meshDB builds a random connected-ish mesh with `links` uncertain
// directed links.
func meshDB(rng *rand.Rand, n, links int, f *big.Rat) (*unreliable.DB, error) {
	s, err := rel.NewStructure(n, linkVoc())
	if err != nil {
		return nil, err
	}
	db := unreliable.New(s)
	for db.NumUncertain() < links {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		// Mix failure modes: mostly present links that may vanish, plus
		// some absent links that may spuriously appear (both directions
		// of the paper's Wrong(Rā) events).
		if db.NumUncertain()%3 != 2 {
			s.MustAdd("Link", u, v)
		}
		if err := db.SetError(rel.GroundAtom{Rel: "Link", Args: rel.Tuple{u, v}}, f); err != nil {
			return nil, err
		}
	}
	return db, nil
}
