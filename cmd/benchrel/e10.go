package main

import (
	"math"
	"math/big"
	"math/rand"

	"qrel/internal/bdd"
	"qrel/internal/core"
	"qrel/internal/karpluby"
	"qrel/internal/logic"
	"qrel/internal/prop"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
	"qrel/internal/workload"
)

// ratInt builds a rational from an integer (shared helper).
func ratInt(v int64) *big.Rat { return big.NewRat(v, 1) }

// runE10 runs the design-choice ablations called out in DESIGN.md:
//
//  1. direct weighted Karp–Luby versus the paper's Theorem 5.3
//     binary-encoding route for Prob-kDNF (same guarantee, different
//     constant factors and instance blowup);
//  2. Corollary 5.5 per-tuple splitting versus direct Hamming-distance
//     sampling for a unary query (sample counts differ by orders of
//     magnitude);
//  3. exact Prob-DNF via BDD versus brute-force enumeration as the
//     lineage grows.
func runE10(cfg config, out *report) error {
	rng := rand.New(rand.NewSource(cfg.seed))

	// Ablation 1: weighted KL vs Theorem 5.3 route.
	out.row("ablation", "variant", "value", "exact", "rel err", "samples", "time")
	d := workload.RandomKDNF(rng, 6, 4, 2)
	p := workload.RandomProbs(rng, 6, 8)
	exact, err := d.ProbBruteForce(p, 12)
	if err != nil {
		return err
	}
	exactF, _ := exact.Float64()
	var direct, viaRed karpluby.CountResult
	tDirect, err := timeIt(func() error {
		var err error
		direct, err = karpluby.ProbDNF(d, p, 0.1, 0.05, rng)
		return err
	})
	if err != nil {
		return err
	}
	tRed, err := timeIt(func() error {
		var err error
		viaRed, err = karpluby.ProbViaReduction(d, p, 0.1, 0.05, rng)
		return err
	})
	if err != nil {
		return err
	}
	dErr := relErr(direct.Float(), exactF)
	rErr := relErr(viaRed.Float(), exactF)
	out.row("prob-kdnf", "weighted-KL", direct.Float(), exactF, dErr, direct.Samples, tDirect)
	out.row("prob-kdnf", "thm53-route", viaRed.Float(), exactF, rErr, viaRed.Samples, tRed)
	out.check("both Prob-kDNF routes land near the exact value", dErr < 0.5 && rErr < 1.0)

	// Ablation 2: Cor 5.5 per-tuple MC vs direct Hamming sampling.
	query := logic.MustParse("exists y . E(x,y) & S(y)", nil)
	db := workload.RandomUDB(rand.New(rand.NewSource(cfg.seed)), 6, 10)
	exactRel, err := core.LineageBDD(cfg.ctx, db, query, core.Options{})
	if err != nil {
		return err
	}
	perTuple, err := core.MonteCarlo(cfg.ctx, db, query, core.Options{Eps: 0.1, Delta: 0.1, Seed: cfg.seed})
	if err != nil {
		return err
	}
	directMC, err := core.MonteCarloDirect(cfg.ctx, db, query, core.Options{Eps: 0.1, Delta: 0.1, Seed: cfg.seed})
	if err != nil {
		return err
	}
	out.row("k-ary-mc", "per-tuple(Cor5.5)", perTuple.RFloat, exactRel.RFloat,
		math.Abs(perTuple.RFloat-exactRel.RFloat), perTuple.Samples, "-")
	out.row("k-ary-mc", "direct-hamming", directMC.RFloat, exactRel.RFloat,
		math.Abs(directMC.RFloat-exactRel.RFloat), directMC.Samples, "-")
	out.check("both MC variants within eps of exact", math.Abs(perTuple.RFloat-exactRel.RFloat) <= 0.1 &&
		math.Abs(directMC.RFloat-exactRel.RFloat) <= 0.1)
	out.check("direct Hamming sampling needs far fewer samples", directMC.Samples*10 < perTuple.Samples)

	// Ablation 3: BDD vs brute force on growing lineages.
	sizes := []int{8, 12, 16, 20}
	if cfg.quick {
		sizes = []int{8, 12}
	}
	bddAlwaysRight := true
	for _, nv := range sizes {
		dl := workload.RandomKDNF(rng, nv, nv, 3)
		pl := workload.RandomProbs(rng, nv, 10)
		var viaBDD *big.Rat
		tBDD, err := timeIt(func() error {
			r, err := probViaBDD(dl, pl)
			viaBDD = r
			return err
		})
		if err != nil {
			return err
		}
		var viaBF *big.Rat
		tBF, err := timeIt(func() error {
			r, err := dl.ProbBruteForce(pl, 24)
			viaBF = r
			return err
		})
		if err != nil {
			return err
		}
		same := viaBDD.Cmp(viaBF) == 0
		bddAlwaysRight = bddAlwaysRight && same
		f, _ := viaBDD.Float64()
		out.row("exact-prob", itoa(nv)+"vars", f, "-", same, tBDD, tBF)
	}
	out.check("BDD and brute-force exact probabilities identical", bddAlwaysRight)
	return runE10Extra(cfg, out)
}

func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / want
}

// probViaBDD computes exact Prob-DNF through the BDD engine.
func probViaBDD(d prop.DNF, p prop.ProbAssignment) (*big.Rat, error) {
	mgr := bdd.New(d.NumVars, 0)
	root, err := mgr.FromDNF(d)
	if err != nil {
		return nil, err
	}
	return mgr.Prob(root, p)
}

// runE10Extra holds the ablations added with the adaptive estimator and
// the BDD ordering heuristics; called from runE10.
func runE10Extra(cfg config, out *report) error {
	rng := rand.New(rand.NewSource(cfg.seed + 1))

	// Ablation 4: adaptive (DKLR) vs static Karp–Luby sample counts on a
	// high-coverage (near-disjoint) formula.
	nv := 24
	d := prop.DNF{NumVars: nv}
	for i := 0; i+1 < nv; i += 2 {
		d.Terms = append(d.Terms, prop.Term{prop.Pos(i), prop.Pos(i + 1)})
	}
	exact, err := probViaBDD(d, prop.UniformProb(nv))
	if err != nil {
		return err
	}
	exactCount := new(big.Rat).Mul(exact, new(big.Rat).SetInt(new(big.Int).Lsh(big.NewInt(1), uint(nv))))
	exactF, _ := exactCount.Float64()
	static, err := karpluby.CountDNF(d, 0.1, 0.05, rng)
	if err != nil {
		return err
	}
	adaptive, err := karpluby.CountDNFAdaptive(d, 0.1, 0.05, rng)
	if err != nil {
		return err
	}
	out.row("adaptive-kl", "static", static.Float(), exactF, relErr(static.Float(), exactF), static.Samples, "-")
	out.row("adaptive-kl", "adaptive(DKLR)", adaptive.Float(), exactF, relErr(adaptive.Float(), exactF), adaptive.Samples, "-")
	out.check("adaptive stopping needs far fewer samples on high-coverage input",
		adaptive.Samples*2 < static.Samples &&
			relErr(adaptive.Float(), exactF) <= 0.1)

	// Ablation 4b: rare-event conditioning for small error probabilities.
	// All mus at 1/100: the flip event has Z ≈ 0.1, so the conditional
	// estimator needs ~Z² of the plain sample count at equal accuracy.
	rareDB := func() *unreliable.DB {
		s := rel.MustStructure(5, workload.GraphVoc())
		dbr := unreliable.New(s)
		// A single witness E(0,1) ∧ S(0): the query's truth hangs on two
		// fragile facts, so R < 1 and the flip event is what matters.
		s.MustAdd("S", 0)
		dbr.MustSetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{0}}, big.NewRat(1, 100))
		for i := 0; i < 5; i++ {
			s.MustAdd("E", i, (i+1)%5)
			dbr.MustSetError(rel.GroundAtom{Rel: "E", Args: rel.Tuple{i, (i + 1) % 5}}, big.NewRat(1, 100))
		}
		return dbr
	}()
	rq := logic.MustParse("exists x y . E(x,y) & S(x)", nil)
	exactRare, err := core.WorldEnum(cfg.ctx, rareDB, rq, core.Options{MaxEnumAtoms: 16})
	if err != nil {
		return err
	}
	rare, err := core.MonteCarloRare(cfg.ctx, rareDB, rq, core.Options{Eps: 0.005, Delta: 0.05, Seed: cfg.seed})
	if err != nil {
		return err
	}
	plainMC, err := core.MonteCarloDirect(cfg.ctx, rareDB, rq, core.Options{Eps: 0.005, Delta: 0.05, Seed: cfg.seed})
	if err != nil {
		return err
	}
	out.row("rare-event", "plain-MC", plainMC.RFloat, exactRare.RFloat,
		math.Abs(plainMC.RFloat-exactRare.RFloat), plainMC.Samples, "-")
	out.row("rare-event", "conditioned", rare.RFloat, exactRare.RFloat,
		math.Abs(rare.RFloat-exactRare.RFloat), rare.Samples, "-")
	out.check("rare-event conditioning cuts samples by ~Z^2 at equal accuracy",
		rare.Samples*20 < plainMC.Samples && math.Abs(rare.RFloat-exactRare.RFloat) <= 0.005)

	// Ablation 5: BDD variable orders on the classic interleaved-pairs
	// function ⋁_i (x_i ∧ x_{i+m}): pairing variables far apart makes
	// the natural order exponential while the first-occurrence order —
	// which keeps each term's variables adjacent — stays linear.
	const m = 10
	shared := prop.DNF{NumVars: 2 * m}
	for i := 0; i < m; i++ {
		shared.Terms = append(shared.Terms, prop.Term{prop.Pos(i), prop.Pos(i + m)})
	}
	sizes := map[string]int{}
	for _, cand := range []struct {
		name string
		ord  bdd.Order
	}{
		{"natural", bdd.NaturalOrder(shared.NumVars)},
		{"frequency", bdd.FrequencyOrder(shared)},
		{"first-occurrence", bdd.FirstOccurrenceOrder(shared)},
	} {
		_, _, size, err := bdd.CompileOrdered(shared, cand.ord, 0)
		if err != nil {
			return err
		}
		sizes[cand.name] = size
		out.row("bdd-order", cand.name, size, "-", "-", "-", "-")
	}
	mgr, bestRoot, _, err := bdd.BestStaticOrder(shared, 0)
	if err != nil {
		return err
	}
	out.row("bdd-order", "best-static", mgr.Size(bestRoot), "-", "-", "-", "-")
	out.check("first-occurrence order is exponentially smaller on interleaved pairs",
		sizes["first-occurrence"]*8 < sizes["natural"] &&
			mgr.Size(bestRoot) == sizes["first-occurrence"])
	return nil
}
