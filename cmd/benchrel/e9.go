package main

import (
	"math"
	"math/rand"
	"time"

	"qrel/internal/metafinite"
	"qrel/internal/workload"
)

// runE9 reproduces Theorem 6.2 on metafinite (functional) databases:
// (i) the reliability of quantifier-free terms is computable in
// polynomial time — timed sweep, exact agreement with world
// enumeration; (ii) first-order aggregate terms (Σ, min, max, avg) are
// handled exactly by world enumeration (the FP^#P simulation), with the
// Monte Carlo estimator staying within its absolute-error bound.
func runE9(cfg config, out *report) error {
	salary := func(v string) metafinite.Term {
		return metafinite.FApp{Fn: "salary", Args: []metafinite.FOTerm{metafinite.V(v)}}
	}
	qfTerm := metafinite.Add{L: salary("x"), R: metafinite.Num{V: ratInt(100)}}
	sizes := []int{8, 16, 32, 64, 128}
	if cfg.quick {
		sizes = []int{8, 16, 32}
	}
	out.row("term", "n", "uncertain", "H", "R", "engine", "time")
	var times []time.Duration
	agree := true
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(cfg.seed + int64(n)))
		// Cap uncertainty so the enumeration cross-check stays feasible
		// on the smallest size but the qfree engine runs on all.
		u, err := workload.SalaryUDB(rng, n, 0.2)
		if err != nil {
			return err
		}
		var res metafinite.Result
		dt, err := timeIt(func() error {
			var err error
			res, err = metafinite.QuantifierFree(u, qfTerm, 0)
			return err
		})
		if err != nil {
			return err
		}
		times = append(times, dt)
		out.row("salary+100", n, len(u.UncertainSites()), res.HFloat, res.RFloat, res.Engine, dt)
		if len(u.UncertainSites()) <= 16 {
			enum, err := metafinite.WorldEnum(u, qfTerm, 0)
			if err != nil {
				return err
			}
			agree = agree && res.H.Cmp(enum.H) == 0
		}
	}
	out.check("metafinite qfree engine agrees with world enumeration", agree)
	nRatio := float64(sizes[len(sizes)-1]) / float64(sizes[0])
	growth := float64(times[len(times)-1]) / float64(maxDuration(times[0], time.Microsecond))
	out.check("metafinite qfree reliability scales polynomially", growth < 64*nRatio*nRatio)

	// Aggregates: exact via enumeration, MC within bound.
	rng := rand.New(rand.NewSource(cfg.seed))
	u, err := workload.SalaryUDB(rng, 10, 0.4)
	if err != nil {
		return err
	}
	aggs := []struct {
		name string
		term metafinite.Term
	}{
		{"sum", metafinite.SumAgg{Var: "x", Body: salary("x")}},
		{"max", metafinite.MaxAgg{Var: "x", Body: salary("x")}},
		{"avg", metafinite.AvgAgg{Var: "x", Body: salary("x")}},
		{"count>500", metafinite.CountAgg{Var: "x", Body: metafinite.CharLess{L: metafinite.Num{V: ratInt(500)}, R: salary("x")}}},
	}
	mcOK := true
	for _, a := range aggs {
		exact, err := metafinite.WorldEnum(u, a.term, 0)
		if err != nil {
			return err
		}
		est, err := metafinite.MonteCarlo(u, a.term, 0.05, 0.05, rand.New(rand.NewSource(cfg.seed+7)))
		if err != nil {
			return err
		}
		absErr := math.Abs(est.RFloat - exact.RFloat)
		if absErr > 0.05 {
			mcOK = false
		}
		out.row(a.name, 10, len(u.UncertainSites()), exact.HFloat, exact.RFloat, "enum vs mc", absErr)
	}
	out.check("aggregate Monte Carlo within absolute error of exact enumeration", mcOK)

	// Theorem 6.2 (iii): a second-order aggregate — max over all subsets
	// S of Σ_{x∈S} salary(x), i.e. the sum of positive salaries (all of
	// them here) — handled exactly by world enumeration.
	soBody := metafinite.SumAgg{Var: "x", Body: metafinite.Mul{
		L: metafinite.InSet("S", metafinite.V("x")),
		R: salary("x"),
	}}
	soTerm := metafinite.SOMax{Set: "S", Arity: 1, Body: soBody}
	small, err := workload.SalaryUDB(rand.New(rand.NewSource(cfg.seed+9)), 4, 0.5)
	if err != nil {
		return err
	}
	soExact, err := metafinite.WorldEnum(small, soTerm, 0)
	if err != nil {
		return err
	}
	// Cross-check: with all salaries positive, the SO max equals the
	// plain SUM, so their reliabilities coincide.
	sumRes, err := metafinite.WorldEnum(small, metafinite.SumAgg{Var: "x", Body: salary("x")}, 0)
	if err != nil {
		return err
	}
	out.row("so-maxset", 4, len(small.UncertainSites()), soExact.HFloat, soExact.RFloat, "thm 6.2(iii)", "-")
	out.check("second-order aggregate reliability matches the equivalent first-order query",
		soExact.H.Cmp(sumRes.H) == 0)
	return nil
}
