package main

import (
	"math"
	"math/big"
	"math/rand"

	"qrel/internal/core"
	"qrel/internal/logic"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
	"qrel/internal/workload"
)

// runE6 reproduces Theorem 5.4 and Corollary 5.5: the probability of an
// existential query has an FPTRAS via its lineage kDNF, and the
// reliability of existential/universal queries is approximable with
// absolute error. The table sweeps the universe size for a conjunctive
// and a universal query, comparing the exact lineage-BDD reliability
// against the Karp–Luby estimate with per-tuple (ε/n^k, δ/n^k)
// splitting, and against exact world enumeration where feasible.
func runE6(cfg config, out *report) error {
	queries := []struct {
		name string
		src  string
	}{
		{"conjunctive", "exists x y . E(x,y) & S(x) & S(y)"},
		{"universal", "forall x y . E(x,y) -> S(y)"},
		{"unary", "exists y . E(x,y) & S(y)"},
	}
	sizes := []int{4, 8, 16}
	if cfg.quick {
		sizes = []int{4, 8}
	}
	const eps, delta = 0.1, 0.05
	out.row("query", "n", "uncertain", "R exact", "R approx", "abs err", "ok", "samples", "t_bdd", "t_kl")
	failures, rows := 0, 0
	agreeEnum := true
	for _, q := range queries {
		f := logic.MustParse(q.src, nil)
		for _, n := range sizes {
			rng := rand.New(rand.NewSource(cfg.seed + int64(n)))
			db := e6DB(rng, n)
			var exact core.Result
			tBDD, err := timeIt(func() error {
				var err error
				exact, err = core.LineageBDD(cfg.ctx, db, f, core.Options{})
				return err
			})
			if err != nil {
				return err
			}
			if db.NumUncertain() <= 14 {
				enum, err := core.WorldEnum(cfg.ctx, db, f, core.Options{})
				if err != nil {
					return err
				}
				agreeEnum = agreeEnum && exact.H.Cmp(enum.H) == 0
			}
			var approx core.Result
			tKL, err := timeIt(func() error {
				var err error
				approx, err = core.LineageKL(cfg.ctx, db, f, core.Options{Eps: eps, Delta: delta, Seed: cfg.seed}, false)
				return err
			})
			if err != nil {
				return err
			}
			absErr := math.Abs(approx.RFloat - exact.RFloat)
			ok := absErr <= eps
			rows++
			if !ok {
				failures++
			}
			out.row(q.name, n, db.NumUncertain(), exact.RFloat, approx.RFloat, absErr, ok, approx.Samples, tBDD, tKL)
		}
	}
	out.check("lineage BDD agrees with world enumeration wherever both run", agreeEnum)
	out.check("Karp–Luby reliability within eps of exact at the promised rate", failures*10 <= 3*rows)
	return nil
}

// e6DB builds a sparse structure whose uncertainty sits on atoms that
// actually appear in the test queries' lineages: S labels of edge
// endpoints and a few edges themselves, so query truth varies across
// worlds instead of being saturated.
func e6DB(rng *rand.Rand, n int) *unreliable.DB {
	s := rel.MustStructure(n, workload.GraphVoc())
	type edge struct{ u, v int }
	var edges []edge
	for i := 0; i < n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		s.MustAdd("E", u, v)
		edges = append(edges, edge{u, v})
	}
	db := unreliable.New(s)
	for _, e := range edges {
		if rng.Intn(2) == 0 {
			s.MustAdd("S", e.u)
		}
		db.MustSetError(rel.GroundAtom{Rel: "S", Args: rel.Tuple{e.u}}, big.NewRat(1, 4))
		if rng.Intn(3) == 0 {
			db.MustSetError(rel.GroundAtom{Rel: "E", Args: rel.Tuple{e.u, e.v}}, big.NewRat(1, 6))
		}
	}
	return db
}
