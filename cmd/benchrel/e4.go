package main

import (
	"math"
	"math/big"
	"math/rand"

	"qrel/internal/bdd"
	"qrel/internal/karpluby"

	"qrel/internal/workload"
)

// runE4 reproduces Theorem 5.2 (Karp–Luby): #DNF admits an FPTRAS. The
// sweep draws random kDNFs, counts them exactly with the BDD engine,
// and measures the Karp–Luby estimator's relative error and cost across
// ε; the verdict requires the advertised error at the advertised
// confidence. A second table contrasts Karp–Luby with naive uniform
// sampling on a low-density instance (few satisfying assignments):
// given the same number of samples, naive MC typically sees zero hits
// and reports 0 — unbounded relative error — while Karp–Luby stays
// within ε, which is exactly why the coverage construction exists.
func runE4(cfg config, out *report) error {
	rng := rand.New(rand.NewSource(cfg.seed))
	instances := []struct {
		vars, terms, k int
	}{
		{20, 20, 3},
		{30, 40, 3},
		{40, 30, 4},
	}
	epss := []float64{0.2, 0.1, 0.05}
	if cfg.quick {
		instances = instances[:2]
		epss = []float64{0.2, 0.1}
	}
	const delta = 0.05
	out.row("vars", "terms", "eps", "exact", "estimate", "rel err", "samples", "time")
	failures, rows := 0, 0
	for _, inst := range instances {
		d := workload.RandomKDNF(rng, inst.vars, inst.terms, inst.k)
		mgr := bdd.New(d.NumVars, 0)
		root, err := mgr.FromDNF(d)
		if err != nil {
			return err
		}
		exact := mgr.Count(root)
		exactF, _ := new(big.Rat).SetInt(exact).Float64()
		for _, eps := range epss {
			var res karpluby.CountResult
			dt, err := timeIt(func() error {
				var err error
				res, err = karpluby.CountDNF(d, eps, delta, rng)
				return err
			})
			if err != nil {
				return err
			}
			relErr := math.Abs(res.Float()-exactF) / exactF
			rows++
			if relErr > eps {
				failures++
			}
			out.row(inst.vars, inst.terms, eps, exactF, res.Float(), relErr, res.Samples, dt)
		}
	}
	// With delta = 5% per row, more than ~30% failures means the
	// estimator is broken rather than unlucky.
	out.check("Karp–Luby achieves relative error eps at confidence 1-delta", failures*10 <= 3*rows)

	// Low-density contrast: terms are 20-literal positive conjunctions
	// over 56 vars, so the union covers ≈ terms·2^-20 of the space and a
	// uniform sampler essentially never hits it.
	sparse := workload.SparseKDNF(rng, 56, 6, 20)
	mgr := bdd.New(sparse.NumVars, 0)
	root, err := mgr.FromDNF(sparse)
	if err != nil {
		return err
	}
	exact := mgr.Count(root)
	exactF, _ := new(big.Rat).SetInt(exact).Float64()
	kl, err := karpluby.CountDNF(sparse, 0.1, 0.05, rng)
	if err != nil {
		return err
	}
	// Naive MC with the same sample budget.
	hits := 0
	a := make([]bool, sparse.NumVars)
	for i := 0; i < kl.Samples; i++ {
		for j := range a {
			a[j] = rng.Intn(2) == 0
		}
		if sparse.Eval(a) {
			hits++
		}
	}
	naive := float64(hits) / float64(kl.Samples) * math.Pow(2, float64(sparse.NumVars))
	klErr := math.Abs(kl.Float()-exactF) / exactF
	naiveErr := math.Abs(naive-exactF) / exactF
	out.row("sparse", len(sparse.Terms), "0.1", exactF, kl.Float(), klErr, kl.Samples, "-")
	out.row("sparse(naive)", len(sparse.Terms), "-", exactF, naive, naiveErr, kl.Samples, "-")
	out.check("Karp–Luby beats naive MC on the low-density instance", klErr <= 0.1 && naiveErr > klErr)
	return nil
}
