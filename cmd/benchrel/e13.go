package main

import (
	"math/rand"
	"strings"
	"time"

	"fmt"

	"qrel/internal/core"
	"qrel/internal/logic"
	"qrel/internal/workload"
)

// runE13 probes the dimension the paper deliberately holds fixed:
// expression complexity. The data complexity of the Proposition 3.1
// algorithm is polynomial, but its cost is exponential in the number of
// atoms n(ψ) of the query (the 2^n(ψ) assignment enumeration) — which
// is fine, says the paper, because "queries are usually given by small
// expressions, whereas the size of the databases may be huge". The
// table fixes the database and doubles the query's atom count,
// exposing the 2^n(ψ) factor; the data sweep at fixed query reconfirms
// the polynomial shape in n.
func runE13(cfg config, out *report) error {
	// Empty observed relations make the observed value false for every
	// tuple uniformly, so the 2^n(psi) assignment enumeration (with its
	// exact-weight computation) dominates at every size and the ratios
	// are clean.
	db := workload.AddUncertainty(rand.New(rand.NewSource(cfg.seed)),
		workload.RandomStructure(rand.New(rand.NewSource(cfg.seed)), 12, 0, 0), 6, 10)

	out.row("axis", "size", "time", "x prev")
	// Expression sweep: m DISTINCT ground atoms per tuple — E(x,#0),
	// E(x,#1), ... — so n(psi) = m and the per-tuple cost is 2^m.
	var prev, first, last time.Duration
	sizes := []int{4, 6, 8, 10, 12}
	if cfg.quick {
		sizes = []int{4, 6, 8, 10}
	}
	for _, m := range sizes {
		parts := make([]string, m)
		for i := range parts {
			parts[i] = fmt.Sprintf("E(x,%d)", i)
		}
		src := strings.Join(parts, " | ")
		f := logic.MustParse(src, nil)
		// Best of three: single-shot timings at the microsecond scale are
		// too noisy for ratio checks.
		var dt time.Duration
		for rep := 0; rep < 3; rep++ {
			d, err := timeIt(func() error {
				_, err := core.QuantifierFree(cfg.ctx, db, f, core.Options{})
				return err
			})
			if err != nil {
				return err
			}
			if rep == 0 || d < dt {
				dt = d
			}
		}
		ratio := "-"
		if prev > 0 {
			ratio = fmt.Sprintf("%.1f", float64(dt)/float64(maxDuration(prev, time.Microsecond)))
		}
		out.row("query-atoms", m, dt, ratio)
		prev = dt
		if first == 0 {
			first = dt
		}
		last = dt
	}
	// Theory: 2^(m_last − m_first) = 256x (64x in quick mode) over the
	// sweep; individual +2 steps are noisy at the millisecond scale, so
	// check total growth with generous slack.
	totalGrowth := float64(last) / float64(maxDuration(first, time.Microsecond))
	wantGrowth := 64.0
	if cfg.quick {
		wantGrowth = 16
	}
	out.check("cost grows exponentially in n(psi) over the sweep", totalGrowth >= wantGrowth)

	// Data sweep at fixed small query: polynomial in n.
	f := logic.MustParse("S(x) | E(x,x)", nil)
	var times []time.Duration
	ns := []int{16, 64, 256}
	if cfg.quick {
		ns = []int{16, 64}
	}
	for _, n := range ns {
		rngN := rand.New(rand.NewSource(cfg.seed + int64(n)))
		dbN := workload.AddUncertainty(rngN, workload.RandomStructure(rngN, n, 0.2, 0.5), n/2, 10)
		dt, err := timeIt(func() error {
			_, err := core.QuantifierFree(cfg.ctx, dbN, f, core.Options{})
			return err
		})
		if err != nil {
			return err
		}
		times = append(times, dt)
		out.row("data", n, dt, "-")
	}
	nRatio := float64(ns[len(ns)-1]) / float64(ns[0])
	growth := float64(times[len(times)-1]) / float64(maxDuration(times[0], time.Microsecond))
	out.check("data complexity stays polynomial while expression complexity is exponential",
		growth < 64*nRatio*nRatio)
	return nil
}
