package main

import (
	"math/rand"

	"qrel/internal/core"
	"qrel/internal/reductions"
)

// runE2 reproduces Proposition 3.2: the expected error of the fixed
// conjunctive query on the #MONOTONE-2SAT reduction instance satisfies
// H·2^n = #SAT on every instance, verified against two independent
// counters (brute force where feasible, independent-set branching
// everywhere). The table also records the exact engines' running times;
// the exponential growth of world enumeration against the variable
// count — while the polynomial-size reduction itself stays cheap — is
// the observable face of #P-hardness.
func runE2(cfg config, out *report) error {
	sizes := []int{4, 6, 8, 10, 12, 16, 20}
	if cfg.quick {
		sizes = []int{4, 6, 8, 10}
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	out.row("vars", "clauses", "#SAT(IS)", "H·2^n", "agree", "t_bdd", "t_enum")
	allAgree := true
	for _, n := range sizes {
		c := reductions.RandomMonotone2CNF(rng, n, n+n/2)
		inst, err := reductions.BuildMon2SatInstance(c)
		if err != nil {
			return err
		}
		var res core.Result
		tBDD, err := timeIt(func() error {
			var err error
			res, err = core.LineageBDD(cfg.ctx, inst.DB, inst.Query, core.Options{})
			return err
		})
		if err != nil {
			return err
		}
		count, err := inst.ExpectedCount(res.H)
		if err != nil {
			return err
		}
		want, err := c.CountSat()
		if err != nil {
			return err
		}
		agree := count.Cmp(want) == 0
		allAgree = allAgree && agree

		enumCol := "skipped"
		if n <= 12 {
			tEnum, err := timeIt(func() error {
				res2, err := core.WorldEnum(cfg.ctx, inst.DB, inst.Query, core.Options{})
				if err != nil {
					return err
				}
				if res2.H.Cmp(res.H) != 0 {
					allAgree = false
				}
				return nil
			})
			if err != nil {
				return err
			}
			enumCol = tEnum.String()
			// Brute-force counter cross-check.
			bf, err := c.CountSatBruteForce(12)
			if err != nil {
				return err
			}
			if bf.Cmp(want) != 0 {
				allAgree = false
			}
		}
		out.row(n, len(c.Clauses), want, count, agree, tBDD, enumCol)
	}
	out.check("H·2^n = #SAT on every instance (two counters, two engines)", allAgree)
	return nil
}
