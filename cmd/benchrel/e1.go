package main

import (
	"math/rand"
	"strconv"
	"time"

	"qrel/internal/core"
	"qrel/internal/logic"
	"qrel/internal/workload"
)

// runE1 reproduces Proposition 3.1: the reliability of quantifier-free
// queries is computable in polynomial time. The table sweeps the
// universe size for queries of arity 1 and 2 and reports the engine's
// running time; the verdict checks (a) exact agreement with world
// enumeration on small instances and (b) polynomial scaling — time
// growth between successive doublings of n stays within a constant
// factor of the n^k tuple-count growth.
func runE1(cfg config, out *report) error {
	queries := []struct {
		name string
		src  string
		k    int
	}{
		{"unary", "S(x) & !E(x,x)", 1},
		{"binary", "E(x,y) & (S(x) | S(y))", 2},
		{"sentence", "E(0,1) <-> S(0)", 0},
	}
	sizes := []int{8, 16, 32, 64, 128}
	if cfg.quick {
		sizes = []int{8, 16, 32}
	}
	out.row("query", "n", "uncertain", "H", "R", "time")
	for _, q := range queries {
		f := logic.MustParse(q.src, nil)
		var times []time.Duration
		for _, n := range sizes {
			rng := rand.New(rand.NewSource(cfg.seed + int64(n)))
			db := workload.AddUncertainty(rng, workload.RandomStructure(rng, n, 0.2, 0.5), n/2, 10)
			var res core.Result
			dt, err := timeIt(func() error {
				var err error
				res, err = core.QuantifierFree(cfg.ctx, db, f, core.Options{})
				return err
			})
			if err != nil {
				return err
			}
			times = append(times, dt)
			out.row(q.name, n, db.NumUncertain(), res.HFloat, res.RFloat, dt)

			// Cross-check against enumeration where feasible.
			if n == sizes[0] {
				exact, err := core.WorldEnum(cfg.ctx, db, f, core.Options{})
				if err != nil {
					return err
				}
				out.check(q.name+" agrees with world enumeration at n="+itoa(n), res.H.Cmp(exact.H) == 0)
			}
		}
		// Polynomial shape: time per tuple must not explode. Compare the
		// last/first time ratio against the tuple-count ratio with slack.
		nRatio := float64(sizes[len(sizes)-1]) / float64(sizes[0])
		tupleGrowth := pow(nRatio, float64(q.k)) * nRatio // n^k tuples × per-tuple O(n^0..1) slack
		timeGrowth := float64(times[len(times)-1]) / float64(maxDuration(times[0], time.Microsecond))
		out.check(q.name+" scales polynomially", timeGrowth < 64*tupleGrowth)
	}
	return nil
}

func itoa(n int) string { return strconv.Itoa(n) }

func pow(base, exp float64) float64 {
	out := 1.0
	for exp >= 1 {
		out *= base
		exp--
	}
	return out
}

func maxDuration(d, floor time.Duration) time.Duration {
	if d < floor {
		return floor
	}
	return d
}
