package main

import (
	"math/big"
	"math/rand"

	"qrel/internal/logic"
	"qrel/internal/rel"
	"qrel/internal/sharpp"
	"qrel/internal/workload"
)

// runE3 reproduces Theorem 4.2: simulating the nondeterministic
// counting machine — guess a world, split nu(B)·g times, accept where
// the query holds — recovers Pr[B ⊨ psi] exactly, and the
// Regan–Schwentick padded variant recovers the same count regardless of
// adversarial junk bits. The sweep over the number of uncertain atoms u
// exposes the 2^u cost of evaluating the oracle deterministically.
//
// The table also reports the g-normalizer erratum: the paper's
// gcd-loop (an LCM) versus the corrected product of denominators; the
// "lcm ok" column shows on how many instances the paper's g would have
// produced non-integral leaf counts.
func runE3(cfg config, out *report) error {
	sizes := []int{2, 4, 6, 8, 10, 12}
	if cfg.quick {
		sizes = []int{2, 4, 6, 8}
	}
	query := logic.MustParse("forall x . exists y . E(x,y) | S(x)", nil)
	pred := func(b *rel.Structure) (bool, error) { return logic.EvalSentence(b, query) }

	out.row("u", "worlds", "g bits", "Pr (oracle)", "oracle=direct", "padded=direct", "lcm ok")
	allOracle, allPadded := true, true
	lcmFailures := 0
	for _, u := range sizes {
		rng := rand.New(rand.NewSource(cfg.seed + int64(u)))
		db := workload.RandomUDB(rng, 4, u)

		o, err := sharpp.CountAcceptingPaths(db, pred, 20)
		if err != nil {
			return err
		}
		// Direct enumeration, independent of the oracle machinery.
		direct := new(big.Rat)
		err = db.ForEachWorld(20, func(b *rel.Structure, nu *big.Rat) bool {
			ok, err := pred(b)
			if err != nil {
				return false
			}
			if ok {
				direct.Add(direct, nu)
			}
			return true
		})
		if err != nil {
			return err
		}
		oracleOK := o.Prob().Cmp(direct) == 0
		allOracle = allOracle && oracleOK

		po, err := sharpp.CountViaPadding(db, pred, rand.New(rand.NewSource(cfg.seed*7+int64(u))), 20)
		if err != nil {
			return err
		}
		paddedOK := po.Prob().Cmp(direct) == 0
		allPadded = allPadded && paddedOK

		// Erratum check: does the paper's lcm-g clear every world?
		lcm := db.GPaperLCM()
		lcmOK := true
		db.ForEachWorld(20, func(_ *rel.Structure, nu *big.Rat) bool {
			x := new(big.Rat).Mul(nu, new(big.Rat).SetInt(lcm))
			if !x.IsInt() {
				lcmOK = false
				return false
			}
			return true
		})
		if !lcmOK {
			lcmFailures++
		}
		pf, _ := o.Prob().Float64()
		out.row(u, o.Worlds, o.G.BitLen(), pf, oracleOK, paddedOK, lcmOK)
	}
	out.check("oracle count / g equals direct probability on every instance", allOracle)
	out.check("padded extraction is junk-proof on every instance", allPadded)
	out.check("erratum reproduced: paper's lcm-g fails on at least one instance", lcmFailures > 0)
	return nil
}
