package main

import (
	"math/big"
	"math/rand"

	"qrel/internal/karpluby"
	"qrel/internal/workload"
)

// runE5 reproduces Theorem 5.3: Prob-kDNF reduces to #DNF via the
// binary-encoding construction. For each denominator q (dyadic and
// non-dyadic), the table reports the reduction geometry (bits, size of
// φ”, legal fraction) and checks that recovering ν(φ) from the exact
// count of φ” matches direct brute-force probability computation. The
// size column demonstrates the polynomial blowup in the probability
// bit-length (exponential only in the fixed width k).
func runE5(cfg config, out *report) error {
	rng := rand.New(rand.NewSource(cfg.seed))
	denoms := []int64{2, 3, 5, 7, 8, 12, 16}
	if cfg.quick {
		denoms = []int64{2, 3, 7, 16}
	}
	out.row("q", "bits", "terms(phi'')", "legal", "illegal", "nu exact", "nu via reduction", "agree")
	allAgree := true
	for _, q := range denoms {
		d := workload.RandomKDNF(rng, 4, 3, 2)
		p := make([]*big.Rat, 4)
		for i := range p {
			p[i] = big.NewRat(rng.Int63n(q+1), q)
		}
		red, err := karpluby.Reduce(d, p)
		if err != nil {
			return err
		}
		count, err := red.PhiPP.CountBruteForce(26)
		if err != nil {
			return err
		}
		via := red.Recover(new(big.Rat).SetInt(count))
		exact, err := d.ProbBruteForce(p, 12)
		if err != nil {
			return err
		}
		agree := via.Cmp(exact) == 0
		allAgree = allAgree && agree
		exactF, _ := exact.Float64()
		viaF, _ := via.Float64()
		out.row(q, red.Bits, len(red.PhiPP.Terms), red.Legal, red.Illegal(), exactF, viaF, agree)
	}
	out.check("reduction recovers nu(phi) exactly for dyadic and non-dyadic probabilities", allAgree)

	// Blowup shape: growing bit-length at fixed k.
	d := workload.RandomKDNF(rng, 3, 3, 2)
	prev := 0
	poly := true
	for _, q := range []int64{3, 61, 1021, 65521} {
		p := []*big.Rat{big.NewRat(1, q), big.NewRat(2, q), big.NewRat(q/2, q)}
		red, err := karpluby.Reduce(d, p)
		if err != nil {
			return err
		}
		ell := big.NewInt(q - 1).BitLen()
		terms := len(red.PhiPP.Terms)
		// Quadratic cap per the O(ell^2) comparison formulas.
		if terms > 3*ell*ell+6*ell {
			poly = false
		}
		out.row("blowup q="+itoa(int(q)), red.Bits, terms, "-", "-", "-", "-", terms >= prev)
		prev = terms
	}
	out.check("phi'' size grows polynomially in the probability bit-length", poly)
	return nil
}
