// Command aggrel computes the reliability of aggregate (metafinite)
// queries on unreliable functional databases — the Section 6 model.
//
// Usage:
//
//	aggrel -db salaries.mfdb -query 'sum_x(salary(x))' [-engine auto|qfree|enum|mc]
//
// The query language has arithmetic (+, -, *), min/max, characteristic
// brackets [a = b] and [a < b], and the aggregate binders sum_v, prod_v,
// min_v, max_v, avg_v, count_v; first-order variables range over the
// finite universe.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"qrel/internal/cliutil"
	"qrel/internal/metafinite"
)

func main() {
	var (
		dbPath = flag.String("db", "", "path to the functional database (aggrel text format); '-' for stdin")
		query  = flag.String("query", "", "aggregate term, e.g. 'avg_x(salary(x))'")
		engine = flag.String("engine", "auto", "engine: auto|qfree|enum|mc")
		eps    = flag.Float64("eps", 0.05, "absolute error of the mc engine")
		delta  = flag.Float64("delta", 0.05, "failure probability of the mc engine")
		seed   = flag.Int64("seed", 1, "random seed of the mc engine")
	)
	flag.Parse()
	if err := run(*dbPath, *query, *engine, *eps, *delta, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "aggrel:", err)
		// Same exit-code contract as relcalc: usage 2, canceled 3,
		// budget 4, infeasible 5, engine 6, anything else 1.
		os.Exit(cliutil.ExitCode(err))
	}
}

func run(dbPath, query, engine string, eps, delta float64, seed int64) (err error) {
	defer cliutil.Recover(&err)
	if dbPath == "" || query == "" {
		return cliutil.UsageErrorf("both -db and -query are required")
	}
	switch engine {
	case "auto", "", "qfree", "enum", "mc":
	default:
		return cliutil.UsageErrorf("unknown engine %q", engine)
	}
	in := os.Stdin
	if dbPath != "-" {
		f, err := os.Open(dbPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	u, err := metafinite.ParseUDB(in)
	if err != nil {
		return err
	}
	term, err := metafinite.Parse(query)
	if err != nil {
		return err
	}
	fmt.Printf("universe: %d elements, %d uncertain sites, %v possible worlds\n",
		u.Obs.N, len(u.UncertainSites()), u.WorldCount())
	fmt.Printf("query:    %s\n", term)
	if fv := metafinite.FreeVars(term); len(fv) > 0 {
		fmt.Printf("free variables: %v (reliability normalized by n^%d)\n", fv, len(fv))
	}
	if obs, err := evalObserved(u, term); err == nil {
		fmt.Printf("observed value(s): %s\n", obs)
	}

	var res metafinite.Result
	switch engine {
	case "qfree":
		res, err = metafinite.QuantifierFree(u, term, 0)
	case "enum":
		res, err = metafinite.WorldEnum(u, term, 0)
	case "mc":
		res, err = metafinite.MonteCarlo(u, term, eps, delta, rand.New(rand.NewSource(seed)))
	case "auto", "":
		if metafinite.IsQuantifierFree(term) {
			res, err = metafinite.QuantifierFree(u, term, 0)
		} else if res, err = metafinite.WorldEnum(u, term, 0); err != nil {
			res, err = metafinite.MonteCarlo(u, term, eps, delta, rand.New(rand.NewSource(seed)))
		}
	default:
		return fmt.Errorf("unknown engine %q", engine)
	}
	if err != nil {
		return err
	}
	fmt.Printf("engine:   %s\n", res.Engine)
	if res.H != nil {
		fmt.Printf("H = %s  (= %.6g)\n", res.H.RatString(), res.HFloat)
		fmt.Printf("R = %s  (= %.6g)\n", res.R.RatString(), res.RFloat)
	} else {
		fmt.Printf("H ≈ %.6g   R ≈ %.6g   (eps %.3g, delta %.3g, %d samples)\n",
			res.HFloat, res.RFloat, eps, delta, res.Samples)
	}
	return nil
}

// evalObserved renders the observed query value (Boolean query) or the
// first few tuple values (k-ary query).
func evalObserved(u *metafinite.UDB, term metafinite.Term) (string, error) {
	fv := metafinite.FreeVars(term)
	if len(fv) == 0 {
		v, err := term.Eval(u.Obs, metafinite.Env{})
		if err != nil {
			return "", err
		}
		return v.RatString(), nil
	}
	if len(fv) > 1 || u.Obs.N > 8 {
		return "", fmt.Errorf("too many values to display")
	}
	out := ""
	env := metafinite.Env{}
	for e := 0; e < u.Obs.N; e++ {
		env[fv[0]] = e
		v, err := term.Eval(u.Obs, env)
		if err != nil {
			return "", err
		}
		if e > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%s", fmt.Sprint(e), v.RatString())
	}
	return out, nil
}
