package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qrel/internal/cliutil"
)

const testMFDB = `
universe 3
func salary/1
salary 0 = 100
salary 1 = 200
salary 2 = 300
salary 1 ~ 200:3/4 250:1/4
`

func writeMFDB(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.mfdb")
	if err := os.WriteFile(path, []byte(testMFDB), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestAggregateEngines(t *testing.T) {
	db := writeMFDB(t)
	// Exact: H = 1/4 for SUM (the one uncertain record flips it).
	for _, engine := range []string{"auto", "enum"} {
		out, err := captureStdout(t, func() error {
			return run(db, "sum_x(salary(x))", engine, 0.05, 0.05, 1)
		})
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if !strings.Contains(out, "H = 1/4") {
			t.Errorf("%s: wrong H:\n%s", engine, out)
		}
	}
	// Quantifier-free engine on a per-record query.
	out, err := captureStdout(t, func() error {
		return run(db, "salary(x) + 1", "qfree", 0.05, 0.05, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mf-qfree-exact") {
		t.Errorf("qfree engine not used:\n%s", out)
	}
	// Monte Carlo prints sample counts.
	out, err = captureStdout(t, func() error {
		return run(db, "avg_x(salary(x))", "mc", 0.1, 0.1, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "samples") {
		t.Errorf("mc engine output wrong:\n%s", out)
	}
}

func TestAggrelErrors(t *testing.T) {
	db := writeMFDB(t)
	cases := []struct {
		name string
		fn   func() error
	}{
		{"missing args", func() error { return run("", "", "auto", 0.1, 0.1, 1) }},
		{"missing file", func() error { return run("/nonexistent", "1", "auto", 0.1, 0.1, 1) }},
		{"bad query", func() error { return run(db, "sum_(x)", "auto", 0.1, 0.1, 1) }},
		{"bad engine", func() error { return run(db, "1", "bogus", 0.1, 0.1, 1) }},
		{"qfree on aggregate", func() error { return run(db, "sum_x(salary(x))", "qfree", 0.1, 0.1, 1) }},
	}
	for _, c := range cases {
		if _, err := captureStdout(t, c.fn); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// TestAggrelExitCodes pins aggrel to the shared exit-code contract.
func TestAggrelExitCodes(t *testing.T) {
	db := writeMFDB(t)
	cases := []struct {
		name string
		code int
		fn   func() error
	}{
		{"missing args", cliutil.ExitUsage, func() error { return run("", "", "auto", 0.1, 0.1, 1) }},
		{"unknown engine", cliutil.ExitUsage, func() error { return run(db, "1", "bogus", 0.1, 0.1, 1) }},
		{"missing file", cliutil.ExitFailure, func() error { return run("/nonexistent", "1", "auto", 0.1, 0.1, 1) }},
		{"bad query", cliutil.ExitFailure, func() error { return run(db, "sum_(x)", "auto", 0.1, 0.1, 1) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := captureStdout(t, c.fn)
			if got := cliutil.ExitCode(err); got != c.code {
				t.Errorf("exit code %d (err %v), want %d", got, err, c.code)
			}
		})
	}
}
