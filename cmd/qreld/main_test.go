package main

import (
	"os"
	"syscall"
	"testing"
	"time"

	"qrel/internal/cliutil"
	"qrel/internal/server"
)

// TestServeDrainsOnSIGTERM proves the acceptance contract end to end:
// a SIGTERM makes serve drain and return nil (the process exits 0).
func TestServeDrainsOnSIGTERM(t *testing.T) {
	done := make(chan error, 1)
	go func() { done <- serve("127.0.0.1:0", "", server.Config{}, nil, 2*time.Second) }()
	time.Sleep(100 * time.Millisecond) // let the listener and signal handler install
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after SIGTERM, want nil (exit 0)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
}

func TestBadPreloadIsUsageError(t *testing.T) {
	err := serve("127.0.0.1:0", "", server.Config{}, []string{"no-equals-sign"}, time.Second)
	if err == nil || !cliutil.IsUsage(err) {
		t.Fatalf("error %v, want a usage error (exit %d)", err, cliutil.ExitUsage)
	}
}

// TestSelftest runs the full deployment smoke test in-process.
func TestSelftest(t *testing.T) {
	if testing.Short() {
		t.Skip("selftest exercises wall-clock backoff and cooldowns")
	}
	if err := runSelftest(server.Config{}); err != nil {
		t.Fatal(err)
	}
}
