package main

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"qrel"
	"qrel/internal/faultinject"
	"qrel/internal/server"
	"qrel/internal/server/client"
)

// runSelftest boots an in-process server on a loopback port and drives
// it through the retrying client: a basic exact computation, load
// shedding at capacity, a circuit breaker tripping and recovering, and
// a graceful drain. It is the deployment smoke test — if it passes, the
// binary's whole serving stack (pool, shed, breakers, drain, client
// backoff) works on this machine.
func runSelftest(cfg server.Config) error {
	defer faultinject.Reset()
	// A tiny pool makes saturation cheap to provoke; a short cooldown
	// keeps the breaker recovery step fast.
	cfg.Workers = 2
	cfg.QueueDepth = 2
	cfg.Breaker = server.BreakerConfig{Threshold: 2, Cooldown: 200 * time.Millisecond}

	s := server.New(cfg)
	s.Register("selftest", selftestDB())
	ln, err := listenLocal()
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()

	base := "http://" + ln.Addr().String()
	c := client.New(base)
	ctx := context.Background()
	req := qreldRequest("exists x y . E(x,y)")

	// 1. Basic exact computation end to end.
	res, err := c.Reliability(ctx, req)
	if err != nil {
		return fmt.Errorf("basic request: %w", err)
	}
	if res.RExact == "" || res.R < 0 || res.R > 1 {
		return fmt.Errorf("basic request: implausible result %+v", res)
	}
	fmt.Printf("selftest: basic ok        (R = %s via %s)\n", res.RExact, res.Engine)

	// 2. Saturation sheds with 503 + Retry-After; the retrying client
	// rides through it.
	faultinject.Enable(faultinject.SiteServerHandle, faultinject.Fault{Delay: 100 * time.Millisecond})
	var wg sync.WaitGroup
	shed := make(chan struct{}, 64)
	raw := client.New(base)
	raw.MaxAttempts = 1 // no retries: count raw sheds
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := raw.Reliability(ctx, req); err != nil && client.IsShed(err) {
				shed <- struct{}{}
			}
		}()
	}
	wg.Wait()
	faultinject.Reset()
	if len(shed) == 0 {
		return fmt.Errorf("shedding: 10 concurrent requests on a 2+2 pool produced no 503")
	}
	if _, err := c.Reliability(ctx, req); err != nil {
		return fmt.Errorf("shedding: retrying client failed after load dropped: %w", err)
	}
	fmt.Printf("selftest: shedding ok     (%d of 10 shed at capacity 2+2)\n", len(shed))

	// 3. Breaker: two injected qfree panics trip the rung; the ladder
	// still answers; after the cooldown a half-open probe closes it.
	faultinject.Enable(faultinject.SiteQFree, faultinject.Fault{Panic: "selftest crash"})
	qf := qreldRequest("S(x)")
	for i := 0; i < 3; i++ {
		if _, err := c.Reliability(ctx, qf); err != nil {
			return fmt.Errorf("breaker: request %d failed: %w", i, err)
		}
	}
	st, err := c.Statz(ctx)
	if err != nil {
		return fmt.Errorf("statz: %w", err)
	}
	if b := st.Breakers["qfree"]; b.State != "open" {
		return fmt.Errorf("breaker: qfree state %q after repeated crashes, want open", b.State)
	}
	faultinject.Reset()
	time.Sleep(250 * time.Millisecond)
	if _, err := c.Reliability(ctx, qf); err != nil {
		return fmt.Errorf("breaker: probe request failed: %w", err)
	}
	if st, err = c.Statz(ctx); err != nil {
		return err
	}
	if b := st.Breakers["qfree"]; b.State != "closed" {
		return fmt.Errorf("breaker: qfree state %q after healthy probe, want closed", b.State)
	}
	fmt.Printf("selftest: breaker ok      (tripped open, recovered closed)\n")

	// 4. Drain: a slow in-flight request finishes, new work is refused,
	// and Drain returns within its deadline.
	faultinject.Enable(faultinject.SiteServerHandle, faultinject.Fault{Delay: 150 * time.Millisecond})
	inflight := make(chan error, 1)
	go func() {
		_, err := raw.Reliability(ctx, req)
		inflight <- err
	}()
	time.Sleep(30 * time.Millisecond)
	drainCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-inflight; err != nil {
		return fmt.Errorf("drain: in-flight request stranded: %w", err)
	}
	if _, err := raw.Reliability(ctx, req); err == nil || !client.IsShed(err) {
		return fmt.Errorf("drain: post-drain request got %v, want a 503", err)
	}
	fmt.Printf("selftest: drain ok        (in-flight finished, new work refused)\n")
	faultinject.Reset() // step 4's injected delay must not slow the job down

	// 5. Durable jobs: a drain suspends a checkpointed job mid-flight; a
	// fresh server on the same checkpoint dir recovers and finishes it at
	// full accuracy.
	if err := jobSelftest(ctx, cfg); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	return nil
}

// jobSelftest exercises the durable-job path end to end: submit a long
// checkpointed job, drain the server out from under it, then boot a
// second server on the same checkpoint dir and watch the startup
// recovery resume it to completion.
func jobSelftest(ctx context.Context, cfg server.Config) error {
	ckptDir, err := os.MkdirTemp("", "qreld-selftest-ckpt-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(ckptDir)
	cfg.CheckpointDir = ckptDir
	cfg.CheckpointEvery = 5000

	// A tight eps makes the job long enough to catch mid-flight.
	jobReq := qreldRequest("exists y . E(x,y) & S(y)")
	jobReq.Engine = "monte-carlo-direct"
	jobReq.Eps = 0.002
	jobReq.Delta = 0.05
	jobReq.Seed = 42
	jobReq.IdempotencyKey = "selftest-job"

	s1 := server.New(cfg)
	s1.Register("selftest", selftestDB())
	ln1, err := listenLocal()
	if err != nil {
		return err
	}
	httpSrv1 := &http.Server{Handler: s1.Handler()}
	go func() { _ = httpSrv1.Serve(ln1) }()
	c1 := client.New("http://" + ln1.Addr().String())
	st, err := c1.SubmitJob(ctx, jobReq)
	if err != nil {
		httpSrv1.Close()
		return fmt.Errorf("submit: %w", err)
	}
	// Drain only once the job has demonstrably made durable progress —
	// at least one snapshot on disk — so the resume below has something
	// to resume from.
	for deadline := time.Now().Add(10 * time.Second); ; {
		if ck := s1.Statz().Checkpoints; ck != nil && ck.Written > 0 {
			break
		}
		if time.Now().After(deadline) {
			httpSrv1.Close()
			return fmt.Errorf("job wrote no snapshot within 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	hardCtx, cancelHard := context.WithCancel(ctx)
	cancelHard() // deadline already hit: the drain cancels the job now
	_ = s1.Drain(hardCtx)
	httpSrv1.Close()
	if got := s1.Statz().Jobs.Suspended; got != 1 {
		return fmt.Errorf("drain suspended %d jobs, want 1 (job too short to interrupt?)", got)
	}

	s2 := server.New(cfg)
	s2.Register("selftest", selftestDB())
	resumed, err := s2.RecoverJobs()
	if err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	if resumed != 1 {
		return fmt.Errorf("recovery resumed %d jobs, want 1", resumed)
	}
	ln2, err := listenLocal()
	if err != nil {
		return err
	}
	httpSrv2 := &http.Server{Handler: s2.Handler()}
	go func() { _ = httpSrv2.Serve(ln2) }()
	defer httpSrv2.Close()
	c2 := client.New("http://" + ln2.Addr().String())
	waitCtx, cancelWait := context.WithTimeout(ctx, 60*time.Second)
	defer cancelWait()
	final, err := c2.WaitJob(waitCtx, st.ID, 50*time.Millisecond)
	if err != nil {
		return fmt.Errorf("waiting for resumed job: %w", err)
	}
	if final.State != server.JobDone || final.Result == nil {
		return fmt.Errorf("resumed job finished as %+v", final)
	}
	if !final.Result.Resumed || final.Result.Degraded || final.Result.Seed != jobReq.Seed {
		return fmt.Errorf("resumed job result %+v: want Resumed, not Degraded, seed %d",
			final.Result, jobReq.Seed)
	}
	stz, err := c2.Statz(ctx)
	if err != nil {
		return err
	}
	if stz.Jobs == nil || stz.Jobs.Recovered != 1 {
		return fmt.Errorf("statz jobs %+v, want recovered = 1", stz.Jobs)
	}
	if stz.Checkpoints == nil || stz.Checkpoints.Written == 0 || stz.Checkpoints.Resumed == 0 {
		return fmt.Errorf("statz checkpoints %+v, want written > 0 and resumed > 0", stz.Checkpoints)
	}
	fmt.Printf("selftest: jobs ok         (drained mid-job, recovered, finished at full accuracy; %d snapshots written)\n",
		stz.Checkpoints.Written)
	return nil
}

// selftestDB builds the selftest's small uncertain graph.
func selftestDB() *qrel.DB {
	voc := qrel.MustVocabulary(qrel.RelSym{Name: "E", Arity: 2}, qrel.RelSym{Name: "S", Arity: 1})
	st := qrel.MustStructure(5, voc)
	st.MustAdd("S", 0)
	st.MustAdd("S", 3)
	rng := rand.New(rand.NewSource(7))
	db := qrel.NewDB(st)
	for added := 0; added < 6; {
		a, b := rng.Intn(5), rng.Intn(5)
		atom := qrel.GroundAtom{Rel: "E", Args: qrel.Tuple{a, b}}
		if db.ErrorProb(atom).Sign() != 0 {
			continue
		}
		db.MustSetError(atom, big.NewRat(1, 5))
		added++
	}
	return db
}

// qreldRequest targets the selftest database.
func qreldRequest(query string) server.Request {
	return server.Request{DB: "selftest", Query: query}
}
