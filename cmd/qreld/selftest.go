package main

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"qrel"
	"qrel/internal/faultinject"
	"qrel/internal/server"
	"qrel/internal/server/client"
)

// runSelftest boots an in-process server on a loopback port and drives
// it through the retrying client: a basic exact computation, load
// shedding at capacity, a circuit breaker tripping and recovering, and
// a graceful drain. It is the deployment smoke test — if it passes, the
// binary's whole serving stack (pool, shed, breakers, drain, client
// backoff) works on this machine.
func runSelftest(cfg server.Config) error {
	defer faultinject.Reset()
	// A tiny pool makes saturation cheap to provoke; a short cooldown
	// keeps the breaker recovery step fast.
	cfg.Workers = 2
	cfg.QueueDepth = 2
	cfg.Breaker = server.BreakerConfig{Threshold: 2, Cooldown: 200 * time.Millisecond}

	s := server.New(cfg)
	s.Register("selftest", selftestDB())
	ln, err := listenLocal()
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()

	base := "http://" + ln.Addr().String()
	c := client.New(base)
	ctx := context.Background()
	req := qreldRequest("exists x y . E(x,y)")

	// 1. Basic exact computation end to end.
	res, err := c.Reliability(ctx, req)
	if err != nil {
		return fmt.Errorf("basic request: %w", err)
	}
	if res.RExact == "" || res.R < 0 || res.R > 1 {
		return fmt.Errorf("basic request: implausible result %+v", res)
	}
	fmt.Printf("selftest: basic ok        (R = %s via %s)\n", res.RExact, res.Engine)

	// 2. Saturation sheds with 503 + Retry-After; the retrying client
	// rides through it.
	faultinject.Enable(faultinject.SiteServerHandle, faultinject.Fault{Delay: 100 * time.Millisecond})
	var wg sync.WaitGroup
	shed := make(chan struct{}, 64)
	raw := client.New(base)
	raw.MaxAttempts = 1 // no retries: count raw sheds
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := raw.Reliability(ctx, req); err != nil && client.IsShed(err) {
				shed <- struct{}{}
			}
		}()
	}
	wg.Wait()
	faultinject.Reset()
	if len(shed) == 0 {
		return fmt.Errorf("shedding: 10 concurrent requests on a 2+2 pool produced no 503")
	}
	if _, err := c.Reliability(ctx, req); err != nil {
		return fmt.Errorf("shedding: retrying client failed after load dropped: %w", err)
	}
	fmt.Printf("selftest: shedding ok     (%d of 10 shed at capacity 2+2)\n", len(shed))

	// 3. Breaker: two injected qfree panics trip the rung; the ladder
	// still answers; after the cooldown a half-open probe closes it.
	faultinject.Enable(faultinject.SiteQFree, faultinject.Fault{Panic: "selftest crash"})
	qf := qreldRequest("S(x)")
	for i := 0; i < 3; i++ {
		if _, err := c.Reliability(ctx, qf); err != nil {
			return fmt.Errorf("breaker: request %d failed: %w", i, err)
		}
	}
	st, err := c.Statz(ctx)
	if err != nil {
		return fmt.Errorf("statz: %w", err)
	}
	if b := st.Breakers["qfree"]; b.State != "open" {
		return fmt.Errorf("breaker: qfree state %q after repeated crashes, want open", b.State)
	}
	faultinject.Reset()
	time.Sleep(250 * time.Millisecond)
	if _, err := c.Reliability(ctx, qf); err != nil {
		return fmt.Errorf("breaker: probe request failed: %w", err)
	}
	if st, err = c.Statz(ctx); err != nil {
		return err
	}
	if b := st.Breakers["qfree"]; b.State != "closed" {
		return fmt.Errorf("breaker: qfree state %q after healthy probe, want closed", b.State)
	}
	fmt.Printf("selftest: breaker ok      (tripped open, recovered closed)\n")

	// 4. Drain: a slow in-flight request finishes, new work is refused,
	// and Drain returns within its deadline.
	faultinject.Enable(faultinject.SiteServerHandle, faultinject.Fault{Delay: 150 * time.Millisecond})
	inflight := make(chan error, 1)
	go func() {
		_, err := raw.Reliability(ctx, req)
		inflight <- err
	}()
	time.Sleep(30 * time.Millisecond)
	drainCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-inflight; err != nil {
		return fmt.Errorf("drain: in-flight request stranded: %w", err)
	}
	if _, err := raw.Reliability(ctx, req); err == nil || !client.IsShed(err) {
		return fmt.Errorf("drain: post-drain request got %v, want a 503", err)
	}
	fmt.Printf("selftest: drain ok        (in-flight finished, new work refused)\n")
	return nil
}

// selftestDB builds the selftest's small uncertain graph.
func selftestDB() *qrel.DB {
	voc := qrel.MustVocabulary(qrel.RelSym{Name: "E", Arity: 2}, qrel.RelSym{Name: "S", Arity: 1})
	st := qrel.MustStructure(5, voc)
	st.MustAdd("S", 0)
	st.MustAdd("S", 3)
	rng := rand.New(rand.NewSource(7))
	db := qrel.NewDB(st)
	for added := 0; added < 6; {
		a, b := rng.Intn(5), rng.Intn(5)
		atom := qrel.GroundAtom{Rel: "E", Args: qrel.Tuple{a, b}}
		if db.ErrorProb(atom).Sign() != 0 {
			continue
		}
		db.MustSetError(atom, big.NewRat(1, 5))
		added++
	}
	return db
}

// qreldRequest targets the selftest database.
func qreldRequest(query string) server.Request {
	return server.Request{DB: "selftest", Query: query}
}
