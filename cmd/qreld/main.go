// Command qreld serves qrel reliability computations over HTTP/JSON,
// robustly: a bounded worker pool with a bounded admission queue sheds
// overload with 503 + Retry-After, per-request deadlines map onto the
// runtime's resource budgets, per-engine circuit breakers skip dispatch
// rungs that keep crashing, and SIGTERM drains gracefully — in-flight
// requests finish (or are canceled at the drain deadline) before the
// process exits 0.
//
// Usage:
//
//	qreld -addr :8080 -preload census=census.udb -preload g=g.udb
//	curl -s localhost:8080/v1/reliability -d '{"db":"census","query":"exists x . Employed(x)"}'
//	qreld -selftest
//
// With -checkpoint-dir the service also runs durable jobs: POST
// /v1/jobs starts a computation that checkpoints its estimator state
// crash-safely and survives process death — a restart resumes every
// interrupted job and finishes it bit-identical to an uninterrupted
// run. A drain, too, leaves in-flight jobs resumable instead of
// discarding their work.
//
// Endpoints: POST /v1/reliability, POST /v1/jobs, GET /v1/jobs/{id},
// GET /healthz, /readyz, /statz.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"qrel"
	"qrel/internal/cliutil"
	"qrel/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		debugAddr    = flag.String("debug-addr", "", "listen address for net/http/pprof profiling endpoints (empty = disabled; never exposed on the serving mux)")
		workers      = flag.Int("workers", 4, "pool workers (max concurrent computations)")
		queue        = flag.Int("queue", 64, "admission queue depth; overflow is shed with 503")
		defTimeout   = flag.Duration("default-timeout", 10*time.Second, "per-request budget when the request carries none")
		maxTimeout   = flag.Duration("max-timeout", 60*time.Second, "cap on the per-request budget")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "SIGTERM drain deadline; in-flight work is canceled after it")
		retryAfter   = flag.Duration("retry-after", time.Second, "backoff hint attached to 503 responses")
		brkThreshold = flag.Int("breaker-threshold", 3, "consecutive engine crashes that trip a rung's circuit breaker")
		brkCooldown  = flag.Duration("breaker-cooldown", 5*time.Second, "open time before a tripped breaker half-open probes")
		ckptDir      = flag.String("checkpoint-dir", "", "enable durable jobs (POST /v1/jobs): per-job crash-safe checkpoints live here, and jobs interrupted by a crash or drain are resumed on startup")
		ckptEvery    = flag.Int("checkpoint-every", 0, "snapshot a job's estimator state every n samples (0 = engine default)")
		storeDir     = flag.String("store-dir", "", "root directory for paged store files requests may name with \"store\" (empty = disabled)")
		corrupt      = flag.Bool("chaos-compute-corrupt", false, "CHAOS ONLY: silently perturb one lane aggregate of every lane-range result, making this a Byzantine replica a coordinator audit must catch")
		selftest     = flag.Bool("selftest", false, "start an in-process server, exercise shed/breaker/drain/job-resume through the retrying client, and exit")
		preloads     []string
	)
	flag.Func("preload", "register a database as name=path (repeatable)", func(v string) error {
		preloads = append(preloads, v)
		return nil
	})
	flag.Parse()

	cfg := server.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		DefaultTimeout:  *defTimeout,
		MaxTimeout:      *maxTimeout,
		RetryAfter:      *retryAfter,
		Breaker:         server.BreakerConfig{Threshold: *brkThreshold, Cooldown: *brkCooldown},
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		StoreDir:        *storeDir,
		ComputeCorrupt:  *corrupt,
	}
	if *corrupt {
		log.Printf("qreld: -chaos-compute-corrupt is armed; this replica LIES about lane aggregates")
	}
	if *selftest {
		if err := runSelftest(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "qreld: selftest:", err)
			os.Exit(cliutil.ExitCode(err))
		}
		fmt.Println("qreld: selftest ok")
		return
	}
	if err := serve(*addr, *debugAddr, cfg, preloads, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "qreld:", err)
		os.Exit(cliutil.ExitCode(err))
	}
}

// serve runs the service until SIGTERM/SIGINT, then drains and returns
// nil so the process exits 0.
func serve(addr, debugAddr string, cfg server.Config, preloads []string, drainTimeout time.Duration) error {
	s := server.New(cfg)
	for _, spec := range preloads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			return cliutil.UsageErrorf("-preload %q: want name=path", spec)
		}
		db, err := loadDB(path)
		if err != nil {
			return fmt.Errorf("preloading %q: %w", spec, err)
		}
		s.Register(name, db)
		log.Printf("registered database %q from %s (%d uncertain atoms)", name, path, db.NumUncertain())
	}
	// Resume jobs interrupted by the previous process — after the
	// databases they reference are registered.
	if cfg.CheckpointDir != "" {
		n, err := s.RecoverJobs()
		if err != nil {
			return fmt.Errorf("recovering jobs from %s: %w", cfg.CheckpointDir, err)
		}
		if n > 0 {
			log.Printf("resumed %d interrupted job(s) from %s", n, cfg.CheckpointDir)
		}
	}

	// Listen explicitly (rather than ListenAndServe) so the resolved
	// address — in particular the port the kernel picked for ":0" — is
	// logged before serving starts; scripts launch qreld on ephemeral
	// ports and parse this line to learn where it landed.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("qreld listening on %s (%d workers, queue %d)", ln.Addr(), cfg.Workers, cfg.QueueDepth)
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	// Profiling runs on its own listener and mux, never the serving one:
	// -debug-addr should bind a loopback or otherwise private address.
	var debugSrv *http.Server
	if debugAddr != "" {
		debugSrv = &http.Server{Addr: debugAddr, Handler: debugMux()}
		go func() {
			log.Printf("qreld pprof listening on %s", debugAddr)
			if err := debugSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		return err
	case got := <-sig:
		log.Printf("%v: draining (deadline %v)", got, drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		// Deadline hit: in-flight requests were canceled, not stranded.
		// That is the contract — log it and still exit cleanly.
		log.Printf("drain: %v", err)
	}
	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	_ = httpSrv.Shutdown(shutdownCtx)
	if debugSrv != nil {
		_ = debugSrv.Shutdown(shutdownCtx)
	}
	log.Printf("qreld drained; exiting")
	return nil
}

// debugMux builds a fresh mux carrying only the net/http/pprof
// endpoints. Registering explicitly (instead of importing the package
// for its DefaultServeMux side effect) guarantees the profiling
// handlers can never leak onto the serving mux.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// loadDB reads an unreliable database in the qrel text format.
func loadDB(path string) (*qrel.DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return qrel.ParseDB(f)
}

func listenLocal() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}
