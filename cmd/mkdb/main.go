// Command mkdb generates random unreliable databases in the qrel text
// format, for feeding relcalc and for reproducible experiments. It can
// also emit (and verify) the paged binary store format.
//
// Usage:
//
//	mkdb -kind graph -n 32 -uncertain 12 -seed 7 > g.udb
//	mkdb -kind census -n 20 > census.udb
//	mkdb -kind graph -n 64 -store g.qstore        # paged store file
//	mkdb -check g.qstore                          # verify pages + chains
//	relcalc -db g.udb -query 'exists x y . E(x,y) & S(x)'
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"qrel"
	"qrel/internal/cliutil"
	"qrel/internal/store"
	"qrel/internal/workload"
)

func main() {
	var (
		kind      = flag.String("kind", "graph", "database kind: graph|census")
		n         = flag.Int("n", 16, "universe size (persons for census)")
		uncertain = flag.Int("uncertain", 8, "number of uncertain atoms (graph kind)")
		density   = flag.Float64("density", 0.2, "edge density (graph kind)")
		seed      = flag.Int64("seed", 1, "generator seed")
		storeOut  = flag.String("store", "", "also write the database as a paged store file at this path")
		pageSize  = flag.Int("page-size", 0, "store page size in bytes (0 = default; power of two)")
		batch     = flag.Int("batch", 0, "commit every n tuples during store ingest (0 = single commit)")
		delay     = flag.Duration("commit-delay", 0, "sleep after each intermediate store commit (crash-test hook)")
		check     = flag.String("check", "", "verify an existing store file and exit")
	)
	flag.Parse()
	if *check != "" {
		if err := runCheck(os.Stdout, *check); err != nil {
			fmt.Fprintln(os.Stderr, "mkdb:", err)
			os.Exit(cliutil.ExitCode(err))
		}
		return
	}
	sf := storeFlags{path: *storeOut, pageSize: *pageSize, batch: *batch, delay: *delay}
	if err := run(os.Stdout, *kind, *n, *uncertain, *density, *seed, sf); err != nil {
		fmt.Fprintln(os.Stderr, "mkdb:", err)
		os.Exit(cliutil.ExitCode(err))
	}
}

// storeFlags carries the paged-store output options.
type storeFlags struct {
	path     string
	pageSize int
	batch    int
	delay    time.Duration
}

func run(out io.Writer, kind string, n, uncertain int, density float64, seed int64, sf storeFlags) (err error) {
	defer cliutil.Recover(&err)
	if n < 1 {
		return cliutil.UsageErrorf("need -n ≥ 1")
	}
	if uncertain < 0 {
		return cliutil.UsageErrorf("need -uncertain ≥ 0")
	}
	if density < 0 || density > 1 {
		return cliutil.UsageErrorf("need -density in [0, 1], got %g", density)
	}
	if sf.batch < 0 {
		return cliutil.UsageErrorf("need -batch ≥ 0")
	}
	if (sf.pageSize != 0 || sf.batch != 0 || sf.delay != 0) && sf.path == "" {
		return cliutil.UsageErrorf("-page-size, -batch and -commit-delay require -store")
	}
	rng := rand.New(rand.NewSource(seed))
	var db *qrel.DB
	switch kind {
	case "graph":
		db = workload.AddUncertainty(rng, workload.RandomStructure(rng, n, density, 0.4), uncertain, 10)
	case "census":
		db, err = workload.CensusDB(rng, n, 3)
		if err != nil {
			return err
		}
	default:
		return cliutil.UsageErrorf("unknown kind %q (want graph or census)", kind)
	}
	if sf.path != "" {
		onBatch := func() {}
		if sf.delay > 0 {
			onBatch = func() { time.Sleep(sf.delay) }
		}
		opts := store.Options{PageSize: sf.pageSize}
		if err := store.BuildFromDB(sf.path, db, opts, sf.batch, onBatch); err != nil {
			return err
		}
	}
	return qrel.WriteDB(out, db)
}

// runCheck opens a store file — running journal recovery exactly as a
// normal open would — and verifies every page and chain.
func runCheck(out io.Writer, path string) (err error) {
	defer cliutil.Recover(&err)
	s, err := qrel.OpenStore(path, qrel.StoreOptions{})
	if err != nil {
		return err
	}
	defer s.Close()
	st, err := s.Verify()
	if err != nil {
		return err
	}
	if _, err := s.LoadDB(); err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: ok  (%d pages: %d meta, %d heap, %d mu; %d tuples, %d mu records)\n",
		path, st.Pages, st.MetaPages, st.HeapPages, st.MuPages, st.Tuples, st.MuRecords)
	return nil
}
