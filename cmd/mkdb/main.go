// Command mkdb generates random unreliable databases in the qrel text
// format, for feeding relcalc and for reproducible experiments.
//
// Usage:
//
//	mkdb -kind graph -n 32 -uncertain 12 -seed 7 > g.udb
//	mkdb -kind census -n 20 > census.udb
//	relcalc -db g.udb -query 'exists x y . E(x,y) & S(x)'
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"qrel"
	"qrel/internal/cliutil"
	"qrel/internal/workload"
)

func main() {
	var (
		kind      = flag.String("kind", "graph", "database kind: graph|census")
		n         = flag.Int("n", 16, "universe size (persons for census)")
		uncertain = flag.Int("uncertain", 8, "number of uncertain atoms (graph kind)")
		density   = flag.Float64("density", 0.2, "edge density (graph kind)")
		seed      = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()
	if err := run(os.Stdout, *kind, *n, *uncertain, *density, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "mkdb:", err)
		os.Exit(cliutil.ExitCode(err))
	}
}

func run(out io.Writer, kind string, n, uncertain int, density float64, seed int64) (err error) {
	defer cliutil.Recover(&err)
	if n < 1 {
		return cliutil.UsageErrorf("need -n ≥ 1")
	}
	if uncertain < 0 {
		return cliutil.UsageErrorf("need -uncertain ≥ 0")
	}
	if density < 0 || density > 1 {
		return cliutil.UsageErrorf("need -density in [0, 1], got %g", density)
	}
	rng := rand.New(rand.NewSource(seed))
	var db *qrel.DB
	switch kind {
	case "graph":
		db = workload.AddUncertainty(rng, workload.RandomStructure(rng, n, density, 0.4), uncertain, 10)
	case "census":
		db, err = workload.CensusDB(rng, n, 3)
		if err != nil {
			return err
		}
	default:
		return cliutil.UsageErrorf("unknown kind %q (want graph or census)", kind)
	}
	return qrel.WriteDB(out, db)
}
