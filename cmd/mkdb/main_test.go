package main

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qrel"
	"qrel/internal/cliutil"
)

func TestGenerateGraphParses(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "graph", 12, 6, 0.2, 7, storeFlags{}); err != nil {
		t.Fatal(err)
	}
	db, err := qrel.ParseDB(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("generated database does not parse: %v\n%s", err, buf.String())
	}
	if db.A.N != 12 || db.NumUncertain() != 6 {
		t.Errorf("shape: n=%d uncertain=%d", db.A.N, db.NumUncertain())
	}
	// Determinism under the same seed.
	var buf2 bytes.Buffer
	if err := run(&buf2, "graph", 12, 6, 0.2, 7, storeFlags{}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("generator not deterministic")
	}
}

func TestGenerateCensusParses(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "census", 10, 0, 0, 3, storeFlags{}); err != nil {
		t.Fatal(err)
	}
	if _, err := qrel.ParseDB(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("census database does not parse: %v", err)
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := []struct {
		name  string
		usage bool
		fn    func(*bytes.Buffer) error
	}{
		{"unknown kind", true, func(b *bytes.Buffer) error { return run(b, "nope", 4, 2, 0.2, 1, storeFlags{}) }},
		{"empty universe", true, func(b *bytes.Buffer) error { return run(b, "graph", 0, 2, 0.2, 1, storeFlags{}) }},
		{"negative universe", true, func(b *bytes.Buffer) error { return run(b, "graph", -5, 2, 0.2, 1, storeFlags{}) }},
		{"negative uncertain", true, func(b *bytes.Buffer) error { return run(b, "graph", 4, -1, 0.2, 1, storeFlags{}) }},
		{"density below range", true, func(b *bytes.Buffer) error { return run(b, "graph", 4, 2, -0.1, 1, storeFlags{}) }},
		{"density above range", true, func(b *bytes.Buffer) error { return run(b, "graph", 4, 2, 1.5, 1, storeFlags{}) }},
		{"tiny census", false, func(b *bytes.Buffer) error { return run(b, "census", 1, 0, 0, 1, storeFlags{}) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := c.fn(&buf)
			if err == nil {
				t.Fatal("expected error")
			}
			if got := cliutil.IsUsage(err); got != c.usage {
				t.Errorf("IsUsage = %v (err %v), want %v", got, err, c.usage)
			}
		})
	}
}

func TestStoreOutputRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.qstore")
	var buf bytes.Buffer
	sf := storeFlags{path: path, pageSize: 256, batch: 8}
	if err := run(&buf, "graph", 12, 6, 0.2, 7, sf); err != nil {
		t.Fatal(err)
	}
	s, err := qrel.OpenStore(path, qrel.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	db, err := s.LoadDB()
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := qrel.WriteDB(&out, db); err != nil {
		t.Fatal(err)
	}
	if out.String() != buf.String() {
		t.Errorf("store round trip differs from text output:\n%s\nvs\n%s", out.String(), buf.String())
	}
	var chk bytes.Buffer
	if err := runCheck(&chk, path); err != nil {
		t.Fatalf("runCheck: %v", err)
	}
	if !strings.Contains(chk.String(), "ok") {
		t.Errorf("check output %q", chk.String())
	}
}

func TestStoreFlagsRequireStore(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, "graph", 8, 2, 0.2, 1, storeFlags{pageSize: 256})
	if err == nil || !cliutil.IsUsage(err) {
		t.Errorf("-page-size without -store: got %v, want usage error", err)
	}
}

func TestCheckRejectsCorruptStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.qstore")
	var buf bytes.Buffer
	if err := run(&buf, "graph", 12, 4, 0.3, 7, storeFlags{path: path, pageSize: 256}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 256; i < len(raw); i += 256 {
		raw[i+100] ^= 0x10 // damage every page after the first meta page
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runCheck(io.Discard, path); !errors.Is(err, qrel.ErrCorruptPage) {
		t.Errorf("check of damaged store: got %v, want ErrCorruptPage", err)
	}
}
