package main

import (
	"bytes"
	"strings"
	"testing"

	"qrel"
	"qrel/internal/cliutil"
)

func TestGenerateGraphParses(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "graph", 12, 6, 0.2, 7); err != nil {
		t.Fatal(err)
	}
	db, err := qrel.ParseDB(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("generated database does not parse: %v\n%s", err, buf.String())
	}
	if db.A.N != 12 || db.NumUncertain() != 6 {
		t.Errorf("shape: n=%d uncertain=%d", db.A.N, db.NumUncertain())
	}
	// Determinism under the same seed.
	var buf2 bytes.Buffer
	if err := run(&buf2, "graph", 12, 6, 0.2, 7); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("generator not deterministic")
	}
}

func TestGenerateCensusParses(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "census", 10, 0, 0, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := qrel.ParseDB(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("census database does not parse: %v", err)
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := []struct {
		name  string
		usage bool
		fn    func(*bytes.Buffer) error
	}{
		{"unknown kind", true, func(b *bytes.Buffer) error { return run(b, "nope", 4, 2, 0.2, 1) }},
		{"empty universe", true, func(b *bytes.Buffer) error { return run(b, "graph", 0, 2, 0.2, 1) }},
		{"negative universe", true, func(b *bytes.Buffer) error { return run(b, "graph", -5, 2, 0.2, 1) }},
		{"negative uncertain", true, func(b *bytes.Buffer) error { return run(b, "graph", 4, -1, 0.2, 1) }},
		{"density below range", true, func(b *bytes.Buffer) error { return run(b, "graph", 4, 2, -0.1, 1) }},
		{"density above range", true, func(b *bytes.Buffer) error { return run(b, "graph", 4, 2, 1.5, 1) }},
		{"tiny census", false, func(b *bytes.Buffer) error { return run(b, "census", 1, 0, 0, 1) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := c.fn(&buf)
			if err == nil {
				t.Fatal("expected error")
			}
			if got := cliutil.IsUsage(err); got != c.usage {
				t.Errorf("IsUsage = %v (err %v), want %v", got, err, c.usage)
			}
		})
	}
}
