package main

import (
	"bytes"
	"strings"
	"testing"

	"qrel"
)

func TestGenerateGraphParses(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "graph", 12, 6, 0.2, 7); err != nil {
		t.Fatal(err)
	}
	db, err := qrel.ParseDB(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("generated database does not parse: %v\n%s", err, buf.String())
	}
	if db.A.N != 12 || db.NumUncertain() != 6 {
		t.Errorf("shape: n=%d uncertain=%d", db.A.N, db.NumUncertain())
	}
	// Determinism under the same seed.
	var buf2 bytes.Buffer
	if err := run(&buf2, "graph", 12, 6, 0.2, 7); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("generator not deterministic")
	}
}

func TestGenerateCensusParses(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "census", 10, 0, 0, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := qrel.ParseDB(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("census database does not parse: %v", err)
	}
}

func TestGenerateErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", 4, 2, 0.2, 1); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run(&buf, "graph", 0, 2, 0.2, 1); err == nil {
		t.Error("empty universe accepted")
	}
	if err := run(&buf, "census", 1, 0, 0, 1); err == nil {
		t.Error("tiny census accepted")
	}
}
