module qrel

go 1.22
