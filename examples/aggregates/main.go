// Aggregates: the Section 6 metafinite scenario. Salaries in an HR
// database carry per-record uncertainty; SQL-style aggregate queries
// (SUM, AVG, MAX, COUNT) get reliability numbers: the probability that
// the reported aggregate equals the aggregate over the true data.
//
//	go run ./examples/aggregates [-employees 12] [-seed 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"qrel/internal/metafinite"
	"qrel/internal/workload"
)

func main() {
	employees := flag.Int("employees", 12, "number of employees")
	seed := flag.Int64("seed", 5, "generator seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	u, err := workload.SalaryUDB(rng, *employees, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HR database: %d employees, %d uncertain salary records, %v possible worlds\n\n",
		*employees, len(u.UncertainSites()), u.WorldCount())

	salary := metafinite.FApp{Fn: "salary", Args: []metafinite.FOTerm{metafinite.V("x")}}
	queries := []struct {
		name string
		term metafinite.Term
	}{
		{"SUM(salary)", metafinite.SumAgg{Var: "x", Body: salary}},
		{"AVG(salary)", metafinite.AvgAgg{Var: "x", Body: salary}},
		{"MAX(salary)", metafinite.MaxAgg{Var: "x", Body: salary}},
		{"COUNT(salary > 600)", metafinite.CountAgg{Var: "x",
			Body: metafinite.CharLess{L: metafinite.NumInt(600), R: salary}}},
		{"salary(x)  [unary]", salary},
	}
	for _, q := range queries {
		observed, err := q.term.Eval(u.Obs, metafinite.Env{})
		obsStr := "-"
		if err == nil {
			obsStr = observed.RatString()
		}
		var res metafinite.Result
		if metafinite.IsQuantifierFree(q.term) {
			res, err = metafinite.QuantifierFree(u, q.term, 0)
		} else {
			res, err = metafinite.WorldEnum(u, q.term, 0)
		}
		if err != nil {
			// Too many worlds for exact: fall back to Monte Carlo.
			res, err = metafinite.MonteCarlo(u, q.term, 0.02, 0.02, rng)
			if err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%-22s observed %-8s R = %.4f  (H = %.4f, engine %s)\n",
			q.name, obsStr, res.RFloat, res.HFloat, res.Engine)
	}

	fmt.Println("\nnote: MAX is often perfectly reliable while SUM is fragile —")
	fmt.Println("a single uncertain record flips SUM but rarely the maximum.")
}
