// Census: the dirty-data scenario from the paper's introduction. A
// digitized census has per-fact error probabilities; before acting on a
// query answer, the analyst asks how reliable that answer is — and gets
// a per-tuple risk report for the people whose records are shakiest.
//
//	go run ./examples/census [-people 12] [-seed 3]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"qrel"
	"qrel/internal/workload"
)

func main() {
	people := flag.Int("people", 12, "number of persons in the census")
	seed := flag.Int64("seed", 3, "generator seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	db, err := workload.CensusDB(rng, *people, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("census: %d persons + 3 districts, %d facts, %d uncertain atoms\n\n",
		*people, db.A.FactCount(), db.NumUncertain())

	names := make([]string, 0, len(workload.CensusQueries))
	for name := range workload.CensusQueries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		src := workload.CensusQueries[name]
		q, err := qrel.ParseQuery(src, db.A.Voc)
		if err != nil {
			log.Fatal(err)
		}
		res, err := qrel.Reliability(context.Background(), db, q, qrel.Options{Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %s\n", name, src)
		if res.Guarantee == qrel.Exact {
			fmt.Printf("  R = %s (= %.4f), engine %s\n", res.R.RatString(), res.RFloat, res.Engine)
		} else {
			fmt.Printf("  R ≈ %.4f (±%.2g), engine %s, %d samples\n", res.RFloat, res.Eps, res.Engine, res.Samples)
		}
	}

	// Risk report: which persons' "employed spouse" answer is least
	// reliable?
	q := qrel.MustParseQuery(workload.CensusQueries["spouse-employed"], db.A.Voc)
	per, err := qrel.ExpectedErrorPerTuple(db, q, qrel.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(per, func(i, j int) bool { return per[i].H.Cmp(per[j].H) > 0 })
	fmt.Println("\nriskiest 'employed spouse' answers:")
	shown := 0
	for _, te := range per {
		if te.H.Sign() == 0 || shown == 5 {
			break
		}
		state := "not in answer"
		if te.Observed {
			state = "in answer"
		}
		fmt.Printf("  person %v (%s): Pr[flips] = %s\n", te.Tuple, state, te.H.RatString())
		shown++
	}
	if shown == 0 {
		fmt.Println("  every answer tuple is absolutely reliable")
	}
}
