// Quickstart: build a small unreliable database, ask for the
// reliability of queries from each fragment of the paper, and print the
// engine and guarantee each one gets.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/big"

	"qrel"
)

func main() {
	// A tiny social graph: Follows/2 and Verified/1 over 5 accounts.
	voc := qrel.MustVocabulary(
		qrel.RelSym{Name: "Follows", Arity: 2},
		qrel.RelSym{Name: "Verified", Arity: 1},
	)
	s := qrel.MustStructure(5, voc)
	s.MustAdd("Follows", 0, 1)
	s.MustAdd("Follows", 1, 2)
	s.MustAdd("Follows", 2, 0)
	s.MustAdd("Follows", 3, 4)
	s.MustAdd("Verified", 0)
	s.MustAdd("Verified", 3)

	// The crawler that produced the data is unreliable: some facts may
	// be wrong, each with its own error probability.
	db := qrel.NewDB(s)
	check(db.SetError(qrel.GroundAtom{Rel: "Follows", Args: qrel.Tuple{1, 2}}, big.NewRat(1, 10)))
	check(db.SetError(qrel.GroundAtom{Rel: "Follows", Args: qrel.Tuple{2, 3}}, big.NewRat(1, 5))) // absent, maybe missed
	check(db.SetError(qrel.GroundAtom{Rel: "Verified", Args: qrel.Tuple{3}}, big.NewRat(1, 4)))

	fmt.Printf("observed database: %d accounts, %d facts, %d uncertain atoms\n\n",
		db.A.N, db.A.FactCount(), db.NumUncertain())

	queries := []string{
		// quantifier-free (Proposition 3.1: exact, polynomial).
		"Verified(x) & !Follows(x,x)",
		// conjunctive (Theorem 5.4 territory).
		"exists x y . Follows(x,y) & Verified(x) & Verified(y)",
		// universal.
		"forall x . Verified(x) -> exists y . Follows(x,y)",
	}
	for _, src := range queries {
		q, err := qrel.ParseQuery(src, voc)
		if err != nil {
			log.Fatal(err)
		}
		res, err := qrel.Reliability(context.Background(), db, q, qrel.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query: %s\n", src)
		fmt.Printf("  class %v, engine %s, guarantee %v\n", qrel.Classify(q), res.Engine, res.Guarantee)
		if res.Guarantee == qrel.Exact {
			fmt.Printf("  H = %s, R = %s (= %.4f)\n\n", res.H.RatString(), res.R.RatString(), res.RFloat)
		} else {
			fmt.Printf("  H ≈ %.4f, R ≈ %.4f (±%.2g at %.0f%% confidence)\n\n",
				res.HFloat, res.RFloat, res.Eps, 100*(1-res.Delta))
		}
	}

	// Which answer tuples of a unary query are shaky?
	q := qrel.MustParseQuery("exists y . Follows(x,y)", voc)
	per, err := qrel.ExpectedErrorPerTuple(db, q, qrel.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-account risk for 'follows someone':")
	for _, te := range per {
		mark := " "
		if te.Observed {
			mark = "*"
		}
		fmt.Printf("  %s account %v: Pr[answer flips] = %s\n", mark, te.Tuple, te.H.RatString())
	}
	fmt.Println("  (* = in the observed answer)")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
