// Warehouse: relational-algebra queries with reliability guarantees. A
// suppliers/parts/shipments database extracted by OCR carries per-fact
// error probabilities; SQL-ish select-project-join queries are written
// in relational algebra, compiled to first-order logic, and handed to
// the paper's reliability engines.
//
//	go run ./examples/warehouse
package main

import (
	"context"
	"fmt"
	"log"
	"math/big"

	"qrel/internal/core"
	"qrel/internal/logic"
	"qrel/internal/ra"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

func main() {
	// Universe: suppliers 0-2, parts 3-5.
	voc := rel.MustVocabulary(
		rel.RelSym{Name: "Supplies", Arity: 2}, // (supplier, part)
		rel.RelSym{Name: "Preferred", Arity: 1},
		rel.RelSym{Name: "Critical", Arity: 1},
	)
	s := rel.MustStructure(6, voc)
	s.MustAdd("Supplies", 0, 3)
	s.MustAdd("Supplies", 0, 4)
	s.MustAdd("Supplies", 1, 4)
	s.MustAdd("Supplies", 2, 5)
	s.MustAdd("Preferred", 0)
	s.MustAdd("Preferred", 2)
	s.MustAdd("Critical", 4)
	s.MustAdd("Critical", 5)

	db := unreliable.New(s)
	// OCR noise on two shipments and one preferred flag.
	set := func(relName string, p *big.Rat, args ...int) {
		db.MustSetError(rel.GroundAtom{Rel: relName, Args: rel.Tuple(args)}, p)
	}
	set("Supplies", big.NewRat(1, 8), 0, 4)
	set("Supplies", big.NewRat(1, 5), 1, 4)  // might be misread
	set("Supplies", big.NewRat(1, 10), 1, 3) // absent: might exist
	set("Preferred", big.NewRat(1, 6), 2)

	fmt.Printf("warehouse: %d facts, %d uncertain atoms\n\n", s.FactCount(), db.NumUncertain())

	queries := []struct {
		name string
		expr ra.Expr
	}{
		{
			"critical parts from preferred suppliers",
			ra.Project{
				From: ra.Join{
					L: ra.Join{
						L: ra.Base{Rel: "Supplies", Attrs: []string{"sup", "part"}},
						R: ra.Rename{From: ra.Base{Rel: "Preferred", Attrs: []string{"p"}}, Old: "p", New: "sup"},
					},
					R: ra.Rename{From: ra.Base{Rel: "Critical", Attrs: []string{"c"}}, Old: "c", New: "part"},
				},
				Attrs: []string{"part"},
			},
		},
		{
			"suppliers of part 4",
			ra.Project{
				From:  ra.Select{From: ra.Base{Rel: "Supplies", Attrs: []string{"sup", "part"}}, Attr: "part", Elem: 4},
				Attrs: []string{"sup"},
			},
		},
		{
			"critical parts with no preferred supplier",
			ra.Diff{
				L: ra.Base{Rel: "Critical", Attrs: []string{"part"}},
				R: ra.Project{
					From: ra.Join{
						L: ra.Base{Rel: "Supplies", Attrs: []string{"sup", "part"}},
						R: ra.Rename{From: ra.Base{Rel: "Preferred", Attrs: []string{"p"}}, Old: "p", New: "sup"},
					},
					Attrs: []string{"part"},
				},
			},
		},
	}
	for _, q := range queries {
		res, err := ra.Eval(s, q.expr)
		if err != nil {
			log.Fatal(err)
		}
		f, schema, err := ra.ToFormula(s, q.expr)
		if err != nil {
			log.Fatal(err)
		}
		rres, err := core.Reliability(context.Background(), db, f, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  algebra: %s\n  observed %v: %v\n", q.name, q.expr, schema, res.Rows())
		fmt.Printf("  class %v, engine %s", logic.Classify(f), rres.Engine)
		if rres.Guarantee == core.Exact {
			fmt.Printf(", R = %s (= %.4f)\n\n", rres.R.RatString(), rres.RFloat)
		} else {
			fmt.Printf(", R ≈ %.4f (±%.2g)\n\n", rres.RFloat, rres.Eps)
		}
	}
}
