// Colorability: Lemma 5.9 live. The absolute reliability of the fixed
// existential query "two adjacent nodes share a colour" on the
// reduction database decides graph 4-colourability — this example runs
// the reduction on a few graphs, compares against a backtracking
// solver, and decodes the witness world into an explicit colouring.
//
//	go run ./examples/colorability
package main

import (
	"fmt"
	"log"
	"math/rand"

	"qrel/internal/core"
	"qrel/internal/reductions"
)

func main() {
	graphs := []struct {
		name string
		g    *reductions.Graph
	}{
		{"cycle C5", cycle(5)},
		{"complete K4", complete(4)},
		{"complete K5", complete(5)},
		{"random G(5, .5)", random(5, 0.5)},
	}
	fmt.Println("Lemma 5.9: D ∉ AR_ψ  ⟺  G is 4-colourable")
	fmt.Printf("query: %s\n\n", reductions.FourColQuery)
	for _, item := range graphs {
		inst, err := reductions.BuildFourColInstance(item.g)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.AbsoluteReliability(inst.DB, inst.Query, core.Options{MaxEnumAtoms: 12})
		if err != nil {
			log.Fatal(err)
		}
		_, colorable := item.g.KColoring(4)
		fmt.Printf("%-16s %d vertices, %d edges\n", item.name, item.g.N, item.g.NumEdges())
		fmt.Printf("  solver: 4-colourable = %v; reduction: D ∈ AR = %v  => agree = %v\n",
			colorable, res.Reliable, colorable != res.Reliable)
		if res.Witness != nil {
			colors := reductions.ColoringFromWorld(res.Witness)
			fmt.Printf("  witness world decodes to colouring %v (proper: %v)\n",
				colors, item.g.IsProperColoring(colors))
		}
		fmt.Println()
	}
}

func cycle(n int) *reductions.Graph {
	g := reductions.NewGraph(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n)
	}
	return g
}

func complete(n int) *reductions.Graph {
	g := reductions.NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

func random(n int, p float64) *reductions.Graph {
	g := reductions.RandomGraph(rand.New(rand.NewSource(11)), n, p)
	if g.NumEdges() == 0 {
		g.MustAddEdge(0, 1)
	}
	return g
}
