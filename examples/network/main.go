// Network: two-terminal network reliability as Datalog query
// reliability — the problem that motivated Karp & Luby's Monte Carlo
// work, expressed in the paper's framework. Links of a small network
// fail independently; the query Reach(src, dst) is recursive Datalog
// (so Theorem 4.2's FP^#P bound applies, as de Rougemont proved for
// Datalog), and its reliability is the probability that the observed
// connectivity verdict survives the failures.
//
//	go run ./examples/network
package main

import (
	"fmt"
	"log"
	"math/big"
	"math/rand"

	"qrel/internal/datalog"
	"qrel/internal/rel"
	"qrel/internal/unreliable"
)

const program = `
% two-terminal reachability
Reach(x,y) :- Link(x,y).
Reach(x,z) :- Reach(x,y), Link(y,z).
`

func main() {
	// A 6-node network: a ring 0-1-2-3-4-5 plus two chords.
	links := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, // ring
		{1, 4}, {2, 5}, // chords
	}
	voc := rel.MustVocabulary(rel.RelSym{Name: "Link", Arity: 2})
	s := rel.MustStructure(6, voc)
	db := unreliable.New(s)
	failure := big.NewRat(1, 10) // every link fails with probability 1/10
	for _, l := range links {
		s.MustAdd("Link", l[0], l[1])
		s.MustAdd("Link", l[1], l[0])
		db.MustSetError(rel.GroundAtom{Rel: "Link", Args: rel.Tuple{l[0], l[1]}}, failure)
		db.MustSetError(rel.GroundAtom{Rel: "Link", Args: rel.Tuple{l[1], l[0]}}, failure)
	}
	prog := datalog.MustParse(program)

	fmt.Printf("network: 6 nodes, %d undirected links, each direction failing with prob %s\n",
		len(links), failure.RatString())
	fmt.Printf("program:\n%s\n", prog)

	// Exact two-terminal reliability for a few terminal pairs.
	fmt.Println("two-terminal reliability (exact, world enumeration over 2^16 worlds):")
	for _, pair := range [][2]int{{0, 3}, {1, 5}, {2, 4}} {
		q := datalog.Atom{Pred: "Reach", Args: []datalog.Term{datalog.E(pair[0]), datalog.E(pair[1])}}
		res, err := datalog.Reliability(db, prog, q, 16)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Reach(%d,%d): R = %s (= %.6f)\n", pair[0], pair[1], res.R.RatString(), res.RFloat)
	}

	// All-targets reliability from node 0 (unary pattern).
	q := datalog.Atom{Pred: "Reach", Args: []datalog.Term{datalog.E(0), datalog.V("x")}}
	res, err := datalog.Reliability(db, prog, q, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nall-targets from node 0: H = %s expected flipped answers, R = %.6f\n",
		res.H.RatString(), res.RFloat)

	// Monte Carlo at scale: crank the failure probability and compare.
	est, err := datalog.ReliabilityMC(db, prog, q, 0.01, 0.01, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Monte Carlo cross-check (±0.01): R ≈ %.6f with %d sampled worlds\n",
		est.RFloat, est.Samples)
}
